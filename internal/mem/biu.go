// Package mem models the Aurora III secondary memory system as seen through
// the Bus Interface Unit (BIU): a split-transaction interface to the off-chip
// MMU with buffered requests, configurable average access latency (the
// paper's 17- and 35-cycle design points), and serialised line transfers over
// the shared data bus. Latencies of concurrent reads overlap (split
// transactions); bus occupancy does not.
package mem

import "aurora/internal/obs"

// Config parameterises the memory system.
type Config struct {
	// Latency is the average secondary-memory access time in cycles from
	// request to first data (17 or 35 in the paper's studies).
	Latency int
	// LineTransfer is the bus occupancy in cycles to move one cache line
	// (32 bytes over the 32-bit double-clocked bus ≈ 4 cycles).
	LineTransfer int
	// MaxOutstanding bounds the number of in-flight read transactions
	// (the depth of the BIU transmit/receive queues).
	MaxOutstanding int
}

// DefaultConfig returns the paper's medium-clock-rate memory system.
func DefaultConfig() Config {
	return Config{Latency: 17, LineTransfer: 4, MaxOutstanding: 8}
}

// Stats counts BIU traffic.
type Stats struct {
	Reads        uint64
	Writes       uint64
	BusBusy      uint64 // cycles of bus occupancy accumulated
	ReadLatency  uint64 // total request→data latency over all reads
	PeakInflight int
}

// ReadClient receives line-read completions from the BIU. The tag is the
// opaque value supplied to Read, letting a client with several outstanding
// transactions route the fill without a per-request closure (the hot loop
// stays allocation-free).
type ReadClient interface {
	LineArrived(now uint64, lineAddr uint32, tag uint64)
}

// FuncClient adapts a plain function to ReadClient (tests and tools; the
// simulator's hot path uses struct clients to avoid the closure allocation).
type FuncClient func(now uint64, lineAddr uint32, tag uint64)

// LineArrived calls the wrapped function.
func (f FuncClient) LineArrived(now uint64, lineAddr uint32, tag uint64) { f(now, lineAddr, tag) }

type pending struct {
	doneAt   uint64
	issued   uint64
	lineAddr uint32
	tag      uint64
	client   ReadClient
}

// BIU is the bus interface unit.
type BIU struct {
	cfg   Config
	stats Stats

	// LatencyFor, when non-nil, supplies the access latency for a line
	// read (an MMU / secondary-cache model); nil uses the flat average.
	LatencyFor func(lineAddr uint32) int

	busFreeAt uint64
	inflight  []pending // reads awaiting completion, doneAt ascending
	scratch   []pending // Tick's completion batch, reused across cycles

	probe *obs.Probe
}

// SetProbe attaches the observability probe (nil disables).
func (b *BIU) SetProbe(p *obs.Probe) { b.probe = p }

// New creates a BIU.
func New(cfg Config) *BIU {
	if cfg.Latency <= 0 {
		cfg.Latency = 17
	}
	if cfg.LineTransfer <= 0 {
		cfg.LineTransfer = 4
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 8
	}
	return &BIU{
		cfg:      cfg,
		inflight: make([]pending, 0, cfg.MaxOutstanding),
		scratch:  make([]pending, 0, cfg.MaxOutstanding),
	}
}

// Config returns the active configuration.
//
//aurora:hotpath
func (b *BIU) Config() Config { return b.cfg }

// Stats returns a copy of the accumulated statistics.
//
//aurora:hotpath
func (b *BIU) Stats() Stats { return b.stats }

// CanAccept reports whether a new read transaction can be buffered.
//
//aurora:hotpath
func (b *BIU) CanAccept() bool { return len(b.inflight) < b.cfg.MaxOutstanding }

// Busy reports whether the data bus is occupied at the given cycle.
func (b *BIU) Busy(now uint64) bool { return b.busFreeAt > now }

// SpareForPrefetch reports whether the BIU can take a speculative read
// without starving demand traffic: it keeps two transaction slots in
// reserve. The bus itself pipelines transfers, so mere bus occupancy does
// not block prefetching.
func (b *BIU) SpareForPrefetch() bool {
	return len(b.inflight) <= b.cfg.MaxOutstanding-2
}

// OutstandingReads returns the number of in-flight read transactions.
func (b *BIU) OutstandingReads() int { return len(b.inflight) }

// Read starts a line-read transaction for lineAddr at cycle now. The
// client's LineArrived fires from Tick, with tag echoed back, when the line
// has fully arrived. The returned cycle is the (deterministic) completion
// time; ok is false (and nothing happens) when the transaction buffers are
// full.
//
//aurora:hotpath
func (b *BIU) Read(now uint64, lineAddr uint32, client ReadClient, tag uint64) (completeAt uint64, ok bool) {
	if !b.CanAccept() {
		return 0, false
	}
	// Access latency overlaps across transactions; the return transfer
	// serialises on the bus.
	lat := b.cfg.Latency
	if b.LatencyFor != nil {
		lat = b.LatencyFor(lineAddr)
	}
	ready := now + uint64(lat)
	start := ready
	if b.busFreeAt > start {
		start = b.busFreeAt
	}
	done := start + uint64(b.cfg.LineTransfer)
	b.busFreeAt = done
	b.stats.Reads++
	b.stats.BusBusy += uint64(b.cfg.LineTransfer)
	b.stats.ReadLatency += done - now
	b.insert(pending{doneAt: done, issued: now, lineAddr: lineAddr, tag: tag, client: client})
	if len(b.inflight) > b.stats.PeakInflight {
		b.stats.PeakInflight = len(b.inflight)
	}
	if b.probe != nil {
		b.probe.SpanAt(now, done-now, "mem", "read", "biu", uint64(lineAddr))
		b.probe.Counter("mem", "biu-inflight", uint64(len(b.inflight)))
	}
	return done, true
}

// Write starts a line-write transaction (write-cache eviction). Writes are
// fire-and-forget: they consume bus bandwidth but nothing waits on them.
//
//aurora:hotpath
func (b *BIU) Write(now uint64) {
	start := now
	if b.busFreeAt > start {
		start = b.busFreeAt
	}
	b.busFreeAt = start + uint64(b.cfg.LineTransfer)
	b.stats.Writes++
	b.stats.BusBusy += uint64(b.cfg.LineTransfer)
	if b.probe != nil {
		b.probe.SpanAt(start, uint64(b.cfg.LineTransfer), "mem", "write", "biu", 0)
	}
}

//aurora:hotpath
func (b *BIU) insert(p pending) {
	i := len(b.inflight)
	//aurora:allow(alloc, bounded by outstanding BIU transactions; reaches steady-state capacity)
	b.inflight = append(b.inflight, p)
	for i > 0 && b.inflight[i-1].doneAt > p.doneAt {
		b.inflight[i] = b.inflight[i-1]
		i--
	}
	b.inflight[i] = p
}

// Tick fires the completion callbacks of all reads that have finished by
// cycle now. Call once per cycle before the consumers tick.
//
//aurora:hotpath
func (b *BIU) Tick(now uint64) {
	n := 0
	for n < len(b.inflight) && b.inflight[n].doneAt <= now {
		n++
	}
	if n == 0 {
		return
	}
	// Move the completed batch aside before firing notifications, so a
	// client issuing a new read from LineArrived cannot disturb the walk.
	// The scratch slice is reused every cycle (no per-tick allocation).
	//aurora:allow(alloc, scratch slice reused every cycle; reaches steady-state capacity)
	b.scratch = append(b.scratch[:0], b.inflight[:n]...)
	b.inflight = b.inflight[:copy(b.inflight, b.inflight[n:])]
	if b.probe != nil {
		b.probe.Counter("mem", "biu-inflight", uint64(len(b.inflight)))
	}
	for i := range b.scratch {
		p := &b.scratch[i]
		p.client.LineArrived(now, p.lineAddr, p.tag)
	}
}

// AvgReadLatency returns the mean request→data latency observed so far.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatency) / float64(s.Reads)
}
