package mem

import "testing"

func TestSingleReadLatency(t *testing.T) {
	b := New(Config{Latency: 17, LineTransfer: 4, MaxOutstanding: 8})
	var doneAt uint64
	if _, ok := b.Read(100, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { doneAt = now }), 0); !ok {
		t.Fatal("read rejected")
	}
	for now := uint64(100); now <= 130; now++ {
		b.Tick(now)
	}
	// data complete at 100 + 17 + 4 = 121
	if doneAt != 121 {
		t.Errorf("doneAt = %d want 121", doneAt)
	}
}

func TestOverlappedLatencySerialisedTransfer(t *testing.T) {
	b := New(DefaultConfig())
	var d1, d2 uint64
	b.Read(0, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { d1 = now }), 0)
	b.Read(0, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { d2 = now }), 0)
	for now := uint64(0); now <= 40; now++ {
		b.Tick(now)
	}
	// both latencies overlap (0+17); transfers serialise: 21, then 25.
	if d1 != 21 || d2 != 25 {
		t.Errorf("done = %d, %d want 21, 25", d1, d2)
	}
}

func TestMaxOutstanding(t *testing.T) {
	b := New(Config{Latency: 17, LineTransfer: 4, MaxOutstanding: 2})
	_, ok1 := b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) {}), 0)
	_, ok2 := b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) {}), 0)
	if !ok1 || !ok2 {
		t.Fatal("first two reads rejected")
	}
	if b.CanAccept() {
		t.Error("CanAccept true at capacity")
	}
	if _, ok := b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) {}), 0); ok {
		t.Error("read accepted over capacity")
	}
	for now := uint64(0); now <= 30; now++ {
		b.Tick(now)
	}
	if !b.CanAccept() {
		t.Error("capacity not released after completion")
	}
}

func TestWritesConsumeBandwidth(t *testing.T) {
	b := New(DefaultConfig())
	b.Write(0) // bus busy 0..4
	if !b.Busy(1) {
		t.Error("bus should be busy after write")
	}
	var d1 uint64
	b.Read(0, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { d1 = now }), 0)
	for now := uint64(0); now <= 40; now++ {
		b.Tick(now)
	}
	// read data ready at 17, bus free at 4 → transfer 17..21
	if d1 != 21 {
		t.Errorf("doneAt = %d want 21", d1)
	}
	// now make the bus the bottleneck
	b2 := New(DefaultConfig())
	for i := 0; i < 6; i++ {
		b2.Write(0)
	}
	var d2 uint64
	b2.Read(0, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { d2 = now }), 0)
	for now := uint64(0); now <= 60; now++ {
		b2.Tick(now)
	}
	// writes occupy the bus until 24; read data ready at 17 but transfer
	// waits: 24+4 = 28.
	if d2 != 28 {
		t.Errorf("doneAt = %d want 28", d2)
	}
}

func TestCompletionOrderFIFO(t *testing.T) {
	// Same-cycle requests complete in issue order (the bus serialises).
	b := New(DefaultConfig())
	var order []int
	b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) { order = append(order, 0) }), 0)
	b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) { order = append(order, 1) }), 0)
	b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) { order = append(order, 2) }), 0)
	for now := uint64(0); now <= 60; now++ {
		b.Tick(now)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("completion order %v", order)
	}
}

func TestStats(t *testing.T) {
	b := New(DefaultConfig())
	b.Read(0, 0x1000, FuncClient(func(uint64, uint32, uint64) {}), 0)
	b.Write(0)
	for now := uint64(0); now <= 60; now++ {
		b.Tick(now)
	}
	s := b.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("reads=%d writes=%d", s.Reads, s.Writes)
	}
	if s.BusBusy != 8 {
		t.Errorf("busBusy=%d want 8", s.BusBusy)
	}
	if s.AvgReadLatency() < 21 {
		t.Errorf("avg latency %f", s.AvgReadLatency())
	}
	if (Stats{}).AvgReadLatency() != 0 {
		t.Error("zero-stats latency not 0")
	}
}

func TestLongLatencyConfig(t *testing.T) {
	b := New(Config{Latency: 35, LineTransfer: 4, MaxOutstanding: 8})
	var d uint64
	b.Read(0, 0x1000, FuncClient(func(now uint64, _ uint32, _ uint64) { d = now }), 0)
	for now := uint64(0); now <= 60; now++ {
		b.Tick(now)
	}
	if d != 39 {
		t.Errorf("doneAt = %d want 39", d)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Config{})
	c := b.Config()
	if c.Latency != 17 || c.LineTransfer != 4 || c.MaxOutstanding != 8 {
		t.Errorf("defaults not applied: %+v", c)
	}
}
