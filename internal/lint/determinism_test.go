package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestDeterminism covers both sides of the scope gate: det/core (a
// simulation package by name) seeds wall-clock, math/rand and ordered-map
// violations; det/util is out of scope and must stay silent despite
// containing the same constructs.
func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", lint.Determinism, "det/core", "det/util")
}
