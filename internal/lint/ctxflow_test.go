package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestCtxFlow runs the context-propagation analyzer over a fixture named
// ctx/harness — "harness" being one of the in-scope package names — which
// exercises the F -> FContext wrapper exemption, fresh-root-context bans,
// dropped and unused ctx parameters, and the ctx waiver.
func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.CtxFlow, "ctx/harness")
}
