package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestProbeGuard exercises every guard shape the analyzer recognizes
// (enclosing != nil, conjunctions, else-of-==-nil, Enabled() conditions,
// dominating guard clauses, waivers) against a fixture obs package that the
// analyzer itself must skip.
func TestProbeGuard(t *testing.T) {
	linttest.Run(t, "testdata", lint.ProbeGuard, "probes")
}
