// Package linttest is a hermetic analysistest: it runs a go/analysis
// analyzer over GOPATH-style fixture packages under a testdata directory
// and checks reported diagnostics against // want "regexp" comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest.
//
// The real analysistest drives go/packages, which shells out to the go
// command and (transitively) wants the network-backed module machinery;
// this repository vendors only the analysis core (see third_party/README).
// linttest instead loads fixtures with go/parser + go/types directly:
// fixture-local imports resolve to sibling packages under testdata/src,
// and standard-library imports type-check from GOROOT source via
// importer.ForCompiler(fset, "source", nil). Analysis facts flow between
// fixture packages through an in-memory store — dependencies are analyzed
// before dependents, exactly like a real driver, so cross-package
// annotation facts (hotpathalloc's isHotPath) are exercised for real.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each named fixture package under dir (a GOPATH root: the
// package path "hot/a" lives in dir/src/hot/a) and checks the analyzer's
// diagnostics against the // want comments in those packages' files.
// Fixture dependencies are loaded and analyzed first, without diagnostic
// checking, so their exported facts are visible.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	if len(a.Requires) > 0 {
		t.Fatalf("linttest: analyzer %s has Requires, which linttest does not support", a.Name)
	}
	l := newLoader(dir)
	st := newFactStore()
	for _, path := range pkgPaths {
		if _, err := l.load(path); err != nil {
			t.Fatalf("linttest: loading %s: %v", path, err)
		}
	}
	requested := map[string]bool{}
	for _, p := range pkgPaths {
		requested[p] = true
	}
	// l.order is a dependency postorder: every package appears after its
	// fixture-local imports.
	for _, lp := range l.order {
		diags, err := analyze(a, l.fset, lp, st)
		if err != nil {
			t.Fatalf("linttest: analyzing %s: %v", lp.path, err)
		}
		if requested[lp.path] {
			checkDiagnostics(t, l.fset, lp, diags)
		} else if len(diags) > 0 {
			t.Errorf("linttest: unexpected diagnostics in dependency %s: %v", lp.path, diags)
		}
	}
}

type loadedPkg struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	gopath string
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*loadedPkg
	order  []*loadedPkg
}

func newLoader(gopath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		gopath: gopath,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loadedPkg{},
	}
}

// Import implements types.Importer: fixture-local packages load from the
// testdata GOPATH, everything else defers to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.gopath, "src", path); isDir(dir) {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := l.cache[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return lp, nil
	}
	l.cache[path] = nil // cycle marker
	dir := filepath.Join(l.gopath, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{path: path, pkg: pkg, files: files, info: info}
	l.cache[path] = lp
	l.order = append(l.order, lp)
	return lp, nil
}

// factStore is the in-memory fact database shared by all packages of one
// Run: the analogue of the serialized fact files a real driver threads
// between packages.
type factStore struct {
	obj map[types.Object]map[reflect.Type]analysis.Fact
	pkg map[*types.Package]map[reflect.Type]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		obj: map[types.Object]map[reflect.Type]analysis.Fact{},
		pkg: map[*types.Package]map[reflect.Type]analysis.Fact{},
	}
}

func copyFact(dst, src analysis.Fact) bool {
	if src == nil || reflect.TypeOf(src) != reflect.TypeOf(dst) {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(src).Elem())
	return true
}

func analyze(a *analysis.Analyzer, fset *token.FileSet, lp *loadedPkg, st *factStore) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]interface{}{},
		ReadFile:   os.ReadFile,
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return copyFact(fact, st.obj[obj][reflect.TypeOf(fact)])
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			m := st.obj[obj]
			if m == nil {
				m = map[reflect.Type]analysis.Fact{}
				st.obj[obj] = m
			}
			m[reflect.TypeOf(fact)] = fact
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return copyFact(fact, st.pkg[pkg][reflect.TypeOf(fact)])
		},
		ExportPackageFact: func(fact analysis.Fact) {
			m := st.pkg[lp.pkg]
			if m == nil {
				m = map[reflect.Type]analysis.Fact{}
				st.pkg[lp.pkg] = m
			}
			m[reflect.TypeOf(fact)] = fact
		},
		AllObjectFacts: func() []analysis.ObjectFact {
			var out []analysis.ObjectFact
			for obj, m := range st.obj {
				for _, f := range m {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
			return out
		},
		AllPackageFacts: func() []analysis.PackageFact {
			var out []analysis.PackageFact
			for pkg, m := range st.pkg {
				for _, f := range m {
					out = append(out, analysis.PackageFact{Package: pkg, Fact: f})
				}
			}
			return out
		},
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

type key struct {
	file string
	line int
}

// checkDiagnostics enforces the analysistest contract on one package: each
// diagnostic must be matched by a want regexp on its line, and each want
// regexp must be matched by a diagnostic.
func checkDiagnostics(t *testing.T, fset *token.FileSet, lp *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[key][]*regexp.Regexp{}
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want string %s: %v", pos, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var leftover []string
	for k, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s:%d: no diagnostic matching %q", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, s := range leftover {
		t.Errorf("%s", s)
	}
}
