package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// CtxFlow preserves the cancellation contract across the library's blocking
// entry points (harness, the root aurora package, resultstore): a SIGINT or
// a per-job deadline must be able to stop any simulation a caller started.
// Two rules:
//
//   - context.Background() and context.TODO() are banned in library code —
//     a fresh root context severs the caller's cancellation chain. The one
//     allowed shape is the convenience-wrapper idiom `func F(...) { return
//     FContext(context.Background(), ...) }`: a function whose entire body
//     is a single return forwarding to its own Context-suffixed variant is
//     the documented non-cancellable API and keeps the contract visible in
//     the name.
//   - a context.Context parameter must flow: a parameter named _ drops the
//     caller's context on the floor, and a named parameter that is never
//     read does the same thing more quietly. Either way the function
//     signature promises cancellation it does not deliver.
//
// Waive deliberate exceptions with //aurora:allow(ctx, reason).
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check that library entry points accept and forward context.Context",
	Run:  runCtxFlow,
}

const ctxTok = "ctx"

// ctxFlowPackages are the library layers whose exported surface blocks on
// simulation work: everything between a CLI and the cycle loop.
var ctxFlowPackages = map[string]bool{
	"aurora":      true, // the root package: Run*, Simulation
	"harness":     true, // Runner, sweeps, explorer
	"resultstore": true, // store I/O under the memo table
}

func runCtxFlow(pass *analysis.Pass) (interface{}, error) {
	if !ctxFlowPackages[lastSeg(pass.Pkg.Path())] {
		return nil, nil
	}
	w := collectWaivers(pass)

	for _, f := range sourceFiles(pass) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxParams(pass, w, fd)
			if fd.Body == nil {
				continue
			}
			wrapper := isContextWrapper(pass, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name := rootContextCall(pass, call)
				if name == "" {
					return true
				}
				if wrapper {
					return true
				}
				report(pass, w, call.Pos(), ctxTok,
					"ctxflow: context."+name+" in library code severs the caller's cancellation chain; accept a ctx parameter (or use the F -> FContext wrapper idiom)")
				return true
			})
		}
	}
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// rootContextCall returns "Background" or "TODO" when call constructs a
// fresh root context, else "".
func rootContextCall(pass *analysis.Pass, call *ast.CallExpr) string {
	callee := typeutil.StaticCallee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
		return ""
	}
	if n := callee.Name(); n == "Background" || n == "TODO" {
		return n
	}
	return ""
}

// checkCtxParams flags context parameters the function drops: declared as _
// or declared with a name that the body never reads.
func checkCtxParams(pass *analysis.Pass, w waivers, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				report(pass, w, name.Pos(), ctxTok,
					"ctxflow: context parameter is dropped; name it and forward it")
				continue
			}
			if fd.Body == nil {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || usesObject(pass, fd.Body, obj) {
				continue
			}
			report(pass, w, name.Pos(), ctxTok,
				"ctxflow: context parameter "+name.Name+" is never forwarded; the signature promises cancellation it does not deliver")
		}
	}
}

// usesObject reports whether any identifier in body resolves to obj.
func usesObject(pass *analysis.Pass, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && pass.TypesInfo.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// isContextWrapper reports whether fd is the convenience-wrapper idiom: a
// body of exactly one return statement whose call targets a same-package
// function or method named fd.Name + "Context".
func isContextWrapper(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := typeutil.StaticCallee(pass.TypesInfo, call)
	return callee != nil && callee.Pkg() == pass.Pkg &&
		callee.Name() == fd.Name.Name+"Context"
}
