package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Waiver enforces the waiver grammar itself, so the escape hatches stay
// reviewable: every //aurora:allow must name a known analyzer token AND a
// reason, and every //aurora:identity directive must be one of the two
// legal forms (a method name on a type, or (none, reason) on a field). A
// bare //aurora:allow(token) no longer waives anything — this analyzer is
// what tells the author why their stale waiver stopped working.
var Waiver = &analysis.Analyzer{
	Name: "waiver",
	Doc:  "check that lint waivers carry a known token and a reason",
	Run:  runWaiver,
}

// allowTokens is the registry of waivable analyzer tokens.
var allowTokens = map[string]bool{
	allocTok: true,
	detTok:   true,
	panicTok: true,
	probeTok: true,
	ctxTok:   true,
	faultTok: true,
}

// allowAnyRE matches anything that looks like an allow waiver, for
// validation; the strict allowRE in lint.go is what actually waives.
var allowAnyRE = regexp.MustCompile(`^//aurora:allow\(([^),]*)(?:,\s*([^)]*))?\)`)

// identityAnyRE matches anything that looks like an identity directive.
var identityAnyRE = regexp.MustCompile(`^//aurora:identity\(([^),]*)(?:,\s*([^)]*))?\)`)

func runWaiver(pass *analysis.Pass) (interface{}, error) {
	for _, f := range sourceFiles(pass) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checkWaiverComment(pass, c)
			}
		}
	}
	return nil, nil
}

func checkWaiverComment(pass *analysis.Pass, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if m := allowAnyRE.FindStringSubmatch(text); m != nil {
		tok, reason := m[1], strings.TrimSpace(m[2])
		if !allowTokens[tok] {
			pass.Reportf(c.Pos(), "waiver: unknown token %q in //aurora:allow (known: %s)", tok, tokenList())
			return
		}
		if reason == "" {
			pass.Reportf(c.Pos(), "waiver: //aurora:allow(%s) requires a reason: //aurora:allow(%s, why this is safe)", tok, tok)
		}
		return
	}
	if m := identityAnyRE.FindStringSubmatch(text); m != nil {
		name, reason := m[1], strings.TrimSpace(m[2])
		switch {
		case name == "none":
			if reason == "" {
				pass.Reportf(c.Pos(), "waiver: //aurora:identity(none) requires a reason")
			}
		case identityRE.MatchString(text):
			// Legal type-level form; keyflow validates the method exists.
		default:
			pass.Reportf(c.Pos(), "waiver: malformed //aurora:identity directive %q", text)
		}
		return
	}
	if strings.HasPrefix(text, "//aurora:allow") || strings.HasPrefix(text, "//aurora:identity") {
		pass.Reportf(c.Pos(), "waiver: malformed aurora directive %q", text)
	}
}

func tokenList() string {
	toks := make([]string, 0, len(allowTokens))
	for t := range allowTokens {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	return strings.Join(toks, ", ")
}

// WaiverEntry is one waiver in the tree: an //aurora:allow(token, reason)
// comment or an //aurora:identity(none, reason) field waiver.
type WaiverEntry struct {
	File   string // path relative to the scanned root, forward slashes
	Line   int
	Token  string // analyzer token, or "identity" for field waivers
	Reason string
}

// WaiverInventory walks the module source below root and returns every
// lint waiver in shipped (non-test) code, sorted by file then line. Test
// files, testdata fixtures, the vendored third_party tree and build
// output are excluded: the inventory answers "which invariants does the
// shipped simulator opt out of, and why" — the question TestWaiverInventory
// pins and `aurora-lint -waivers` prints.
//
// Files are parsed, not grepped: a directive counts only when an actual
// comment begins with it, so prose that merely mentions //aurora:allow
// (this suite documents its own grammar a lot) and directive text inside
// string literals stay out of the inventory.
func WaiverInventory(root string) ([]WaiverEntry, error) {
	var out []WaiverEntry
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			switch name {
			case "third_party", "testdata", "bin", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		rel = filepath.ToSlash(rel)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var tok, reason string
				if m := allowAnyRE.FindStringSubmatch(text); m != nil {
					tok, reason = m[1], strings.TrimSpace(m[2])
				} else if m := identityAnyRE.FindStringSubmatch(text); m != nil {
					if m[1] != "none" {
						continue // type-level identity declarations are not waivers
					}
					tok, reason = "identity", strings.TrimSpace(m[2])
				} else {
					continue
				}
				out = append(out, WaiverEntry{
					File:   rel,
					Line:   fset.Position(c.Pos()).Line,
					Token:  tok,
					Reason: reason,
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}
