package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// FaultPath closes the gaps around the quarantine-or-recompute guarantee.
// Two rules:
//
//   - every recover() in a simulation package, harness or the root aurora
//     package must convert the recovered value into a typed *simfault.Fault
//     (a call into package simfault in the same function body) — a recover
//     that rebuilds an untyped error silently strips the job identity,
//     cycle and subsystem the fault taxonomy (docs/ROBUSTNESS.md) and the
//     store's persistable-fault split depend on;
//   - errors returned by the persistence and artifact writers — the
//     resultstore Save*/Put* family, csv.Writer Write/WriteAll, and the obs
//     metric exporters WriteCSV/WriteJSONL/WriteChromeTrace — must not be
//     discarded with `_ =` or an ignored return. A swallowed Save error
//     turns "quarantine and recompute" into "silently never persisted";
//     a swallowed CSV error publishes a truncated artifact as complete.
//
// Deliberate discards carry //aurora:allow(fault, reason) — the harness
// runner does exactly this for store writes, because a failed persist must
// fail neither the simulated job nor the sweep, and the store already
// counts the failure in Stats.PutErrors.
var FaultPath = &analysis.Analyzer{
	Name: "faultpath",
	Doc:  "check recover-to-Fault conversion and undiscarded persistence errors",
	Run:  runFaultPath,
}

const faultTok = "fault"

// errorCheckedMethods maps method names to the package (by final import
// path segment, or full path for the standard library) whose methods must
// not have their error results discarded.
type checkedMethod struct {
	pkg     string // final segment of a module-local package, or stdlib path
	methods map[string]bool
}

var checkedMethods = []checkedMethod{
	{pkg: "resultstore", methods: map[string]bool{
		"Save": true, "SaveSampled": true, "Put": true, "PutSampled": true,
	}},
	// The harness Store interface mirrors the resultstore methods; calls
	// through the interface resolve to the harness-declared method object.
	{pkg: "harness", methods: map[string]bool{
		"Save": true, "SaveSampled": true,
	}},
	{pkg: "encoding/csv", methods: map[string]bool{
		"Write": true, "WriteAll": true,
	}},
	{pkg: "obs", methods: map[string]bool{
		"WriteCSV": true, "WriteJSONL": true, "WriteChromeTrace": true,
	}},
}

// faultPathPackages gates the recover-conversion rule: the packages whose
// panics the harness recovery contract owns.
func faultPathRecoverScope(pkgPath string) bool {
	return isSimPackage(pkgPath) || lastSeg(pkgPath) == "harness" || pkgPath == "aurora"
}

func runFaultPath(pass *analysis.Pass) (interface{}, error) {
	w := collectWaivers(pass)
	recoverScope := faultPathRecoverScope(pass.Pkg.Path())

	for _, f := range sourceFiles(pass) {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if recoverScope && isRecoverCall(pass, n) {
					checkRecoverConverts(pass, w, n, stack)
				}
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, w, call, "return value is ignored")
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, w, n)
			}
		})
	}
	return nil, nil
}

func isRecoverCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "recover"
}

// checkRecoverConverts requires the innermost function enclosing a
// recover() call to also call into package simfault — the FromPanic
// conversion that keeps the fault typed.
func checkRecoverConverts(pass *analysis.Pass, w waivers, call *ast.CallExpr, stack []ast.Node) {
	body := enclosingFuncBody(stack)
	if body == nil {
		return
	}
	if bodyCallsSimfault(pass, body) {
		return
	}
	report(pass, w, call.Pos(), faultTok,
		"faultpath: recover() does not convert to *simfault.Fault; use simfault.FromPanic so the job identity and cycle survive")
}

// enclosingFuncBody returns the body of the innermost FuncDecl or FuncLit
// on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

func bodyCallsSimfault(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutil.StaticCallee(pass.TypesInfo, call)
		if callee != nil && callee.Pkg() != nil && lastSeg(callee.Pkg().Path()) == "simfault" {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeMethod resolves the called function or method object, including
// interface methods (which have no static callee).
func calleeMethod(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil {
		return callee
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return fn
}

// isCheckedErrorCall reports whether call targets one of the methods whose
// error result the analyzer protects, and returns the index of the error
// result in its signature (-1 when not applicable).
func isCheckedErrorCall(pass *analysis.Pass, call *ast.CallExpr) (errIndex int, name string, ok bool) {
	fn := calleeMethod(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return -1, "", false
	}
	path := fn.Pkg().Path()
	for _, cm := range checkedMethods {
		if !cm.methods[fn.Name()] {
			continue
		}
		if path != cm.pkg && lastSeg(path) != cm.pkg {
			continue
		}
		// Module-local segments must stay module-local; "encoding/csv" is
		// matched by full path above.
		if path != cm.pkg && firstSeg(path) != firstSeg(pass.Pkg.Path()) {
			continue
		}
		sig := fn.Type().(*types.Signature)
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				return i, fn.Name(), true
			}
		}
		return -1, "", false
	}
	return -1, "", false
}

func isErrorType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func checkDiscardedError(pass *analysis.Pass, w waivers, call *ast.CallExpr, how string) {
	_, name, ok := isCheckedErrorCall(pass, call)
	if !ok {
		return
	}
	report(pass, w, call.Pos(), faultTok,
		"faultpath: error from "+name+" is discarded ("+how+"); handle it or waive with //aurora:allow(fault, reason)")
}

// checkBlankAssign flags `_ = store.Save(...)` and multi-assigns that park
// the error result on the blank identifier.
func checkBlankAssign(pass *analysis.Pass, w waivers, as *ast.AssignStmt) {
	// Single call on the RHS (covers both `_ = f()` and `a, _ = f()`).
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	errIdx, name, ok := isCheckedErrorCall(pass, call)
	if !ok {
		return
	}
	blankAt := func(i int) bool {
		if i >= len(as.Lhs) {
			return false
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	discarded := false
	if len(as.Lhs) == 1 {
		discarded = blankAt(0)
	} else {
		discarded = blankAt(errIdx)
	}
	if discarded {
		report(pass, w, call.Pos(), faultTok,
			"faultpath: error from "+name+" is discarded (assigned to _); handle it or waive with //aurora:allow(fault, reason)")
	}
}
