package lint_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"aurora/internal/lint"
)

// vetStream is a captured `go vet -json` stderr stream: comment lines,
// two concatenated per-package objects, multiple analyzers.
const vetStream = "# aurora/internal/harness\n" +
	"# [aurora/internal/harness]\n" +
	`{
	"aurora/internal/harness": {
		"faultpath": [
			{
				"posn": "/repo/internal/harness/runner.go:281:2",
				"message": "faultpath: error from Save is discarded (assigned to _)"
			},
			{
				"posn": "/repo/internal/harness/runner.go:286:2",
				"message": "faultpath: error from SaveSampled is discarded (assigned to _)"
			}
		]
	}
}
` + "# aurora/internal/core\n" + `{
	"aurora/internal/core": {
		"keyflow": [
			{
				"posn": "/repo/internal/core/config.go:30:2",
				"message": "keyflow: field Config.New does not reach identity method Fingerprint"
			}
		]
	}
}
`

func TestParseVetJSON(t *testing.T) {
	got, err := lint.ParseVetJSON(strings.NewReader(vetStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(got), got)
	}
	// Sorted by file: core/config.go first.
	first := got[0]
	if first.Analyzer != "keyflow" || first.File != "/repo/internal/core/config.go" ||
		first.Line != 30 || first.Column != 2 || first.Package != "aurora/internal/core" {
		t.Errorf("first result = %+v", first)
	}
	if got[1].Line != 281 || got[2].Line != 286 {
		t.Errorf("harness results out of order: %+v", got[1:])
	}
}

func TestParseVetJSONEmpty(t *testing.T) {
	got, err := lint.ParseVetJSON(strings.NewReader("# pkg\n# [pkg]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d results, want 0", len(got))
	}
}

func TestWriteSARIF(t *testing.T) {
	results, err := lint.ParseVetJSON(strings.NewReader(vetStream))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, results, "/repo"); err != nil {
		t.Fatal(err)
	}

	// The log must be valid JSON with the SARIF 2.1.0 envelope.
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "aurora-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(run.Results))
	}
	// Paths are rewritten relative to root.
	uri := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI
	if uri != "internal/core/config.go" {
		t.Errorf("uri = %q, want internal/core/config.go", uri)
	}
	if run.Results[0].RuleID != "keyflow" || run.Results[0].Level != "error" {
		t.Errorf("result[0] = %+v", run.Results[0])
	}
	if run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 30 {
		t.Errorf("startLine = %d", run.Results[0].Locations[0].PhysicalLocation.Region.StartLine)
	}
	// Both rule IDs present in the rule table, with the aurora analyzer's
	// real doc line.
	ids := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	if !ids["keyflow"] || !ids["faultpath"] {
		t.Errorf("rules = %+v", run.Tool.Driver.Rules)
	}
}

// TestWriteSARIFEmpty: an all-clean run still produces a valid log with an
// empty (non-null) results array — the upload step runs unconditionally.
func TestWriteSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteSARIF(&buf, nil, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"results": []`) {
		t.Errorf("empty results not rendered as []:\n%s", buf.String())
	}
}
