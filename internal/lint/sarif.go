package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file converts `go vet -json` output into SARIF 2.1.0, the format
// code-scanning UIs ingest (aurora-lint -sarif out.sarif). The vet driver
// emits, on stderr, a stream of `# package` comment lines interleaved with
// one JSON object per package:
//
//	{"pkgpath": {"analyzer": [{"posn": "file:line:col", "message": "..."}]}}
//
// ParseVetJSON tolerates the comments and concatenation; VetResult keeps
// the triple flat so the SARIF conversion and the human echo share one
// representation.

// VetResult is one diagnostic from a `go vet -json` stream.
type VetResult struct {
	Package  string
	Analyzer string
	File     string
	Line     int
	Column   int
	Message  string
}

// vetDiagnostic mirrors the vet JSON diagnostic object.
type vetDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// ParseVetJSON decodes a `go vet -json` stream: `#` comment lines are
// skipped, and the remaining concatenated JSON objects — one per package,
// mapping package path -> analyzer name -> diagnostics — are flattened
// into a deterministic (file, line, column, analyzer) order.
func ParseVetJSON(r io.Reader) ([]VetResult, error) {
	var clean bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var out []VetResult
	dec := json.NewDecoder(&clean)
	for {
		var unit map[string]map[string][]vetDiagnostic
		if err := dec.Decode(&unit); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing vet json: %w", err)
		}
		for pkg, byAnalyzer := range unit {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					out = append(out, VetResult{
						Package:  pkg,
						Analyzer: analyzer,
						File:     file,
						Line:     line,
						Column:   col,
						Message:  d.Message,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// splitPosn parses "path:line:col" (column optional) from the right, so
// the path may itself contain colons.
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	rest := posn
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		if n, err := strconv.Atoi(rest[i+1:]); err == nil {
			col = n
			rest = rest[:i]
			if j := strings.LastIndexByte(rest, ':'); j >= 0 {
				if m, err := strconv.Atoi(rest[j+1:]); err == nil {
					line = m
					file = rest[:j]
					return file, line, col
				}
			}
			// Only one numeric suffix: it was the line, not the column.
			file, line, col = rest, col, 0
		}
	}
	return file, line, col
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers require.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the results as a SARIF 2.1.0 log. File paths are
// rewritten relative to root (typically the repository root) so the
// upload's URIs match the checkout layout; absolute paths outside root are
// kept verbatim.
func WriteSARIF(w io.Writer, results []VetResult, root string) error {
	ruleSet := map[string]bool{}
	rules := []sarifRule{}
	sarifResults := []sarifResult{}
	for _, r := range results {
		if !ruleSet[r.Analyzer] {
			ruleSet[r.Analyzer] = true
			rules = append(rules, sarifRule{
				ID:               r.Analyzer,
				ShortDescription: sarifMessage{Text: ruleDoc(r.Analyzer)},
			})
		}
		uri := r.File
		if root != "" {
			if rel, err := filepath.Rel(root, r.File); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		uri = filepath.ToSlash(uri)
		line := r.Line
		if line < 1 {
			line = 1 // SARIF regions are 1-based; vet posn may omit them
		}
		sarifResults = append(sarifResults, sarifResult{
			RuleID:  r.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: r.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: line, StartColumn: r.Column},
				},
			}},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "aurora-lint", Rules: rules}},
			Results: sarifResults,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

// ruleDoc returns the analyzer's one-line doc for the SARIF rule table.
// Unknown rule IDs (stock vet passes run alongside) get a generic line.
func ruleDoc(name string) string {
	for _, a := range Analyzers() {
		if a.Name == name {
			if i := strings.IndexByte(a.Doc, '\n'); i >= 0 {
				return a.Doc[:i]
			}
			return a.Doc
		}
	}
	return "go vet analyzer " + name
}
