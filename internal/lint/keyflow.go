package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// KeyFlow proves key completeness for the identity chain that addresses
// memoized and persisted results: every field of a struct annotated with
// //aurora:identity(Method) must be consumed inside that method's body, so
// that adding a timing-relevant configuration axis without threading it
// into the fingerprint/store key is a build error, not a reflection-test
// afterthought. Three ways a field counts as consumed:
//
//   - a value use — the field is read directly (rendered into the key
//     string, assigned into the frozen fingerprintV1 literal, hashed);
//     because the fingerprint renders nested structs wholesale (%+v, or a
//     field-by-field hash), a by-value flow covers every nested field of
//     mem/fpu/mmu-style sub-configs automatically;
//   - a method-call use that reaches the field type's own identity method —
//     the non-default-suffix idiom (`if !c.BPred.IsDefault() { fp +=
//     c.BPred.Key() }`): the called type must itself carry an
//     //aurora:identity annotation (checked via an exported object fact, so
//     the link holds across packages under vet's modular analysis) and the
//     declared identity method must be among the methods called;
//   - an explicit waiver — //aurora:identity(none, reason) in the field's
//     doc or line comment, for fields that intentionally do not key results
//     (core.Config.Name labels an experiment point, it does not change the
//     machine). The reason is mandatory.
var KeyFlow = &analysis.Analyzer{
	Name:      "keyflow",
	Doc:       "check that every field of an identity-annotated struct reaches its identity method",
	Run:       runKeyFlow,
	FactTypes: []analysis.Fact{new(identityFact)},
}

// identityFact marks a struct type as identity-annotated and records its
// identity method name, making the annotation visible to passes over
// dependent packages (core's check of Config.BPred imports the fact
// exported by bpred's pass on bpred.Config).
type identityFact struct{ Method string }

func (*identityFact) AFact()           {}
func (f *identityFact) String() string { return "identity(" + f.Method + ")" }

// identityRE parses the type-level directive //aurora:identity(Method).
// The field-level waiver form //aurora:identity(none, reason) is parsed by
// identityNoneRE; "none" is not a legal method name.
var identityRE = regexp.MustCompile(`^//aurora:identity\(([A-Za-z_][A-Za-z0-9_]*)\)`)

// identityNoneRE parses the field waiver, capturing the reason (which may
// be empty — the analyzer then demands one).
var identityNoneRE = regexp.MustCompile(`^//aurora:identity\(none(?:,\s*([^)]*))?\)`)

// identityAnnotation returns the identity method name declared on a doc
// comment group, or "".
func identityAnnotation(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if m := identityRE.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil && m[1] != "none" {
			return m[1]
		}
	}
	return ""
}

// fieldWaiver reports whether a field's comments carry the
// //aurora:identity(none, reason) waiver, and the reason text.
func fieldWaiver(groups ...*ast.CommentGroup) (waived bool, reason string) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if m := identityNoneRE.FindStringSubmatch(strings.TrimSpace(c.Text)); m != nil {
				return true, strings.TrimSpace(m[1])
			}
		}
	}
	return false, ""
}

// fieldUse records how one field of an identity struct is consumed inside
// the identity method.
type fieldUse struct {
	value   bool            // read as a value (not only as a method receiver)
	methods map[string]bool // methods called directly on the field
}

func runKeyFlow(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: find the annotated structs and export their facts before any
	// body is checked, so same-package nesting resolves in either order.
	type annotated struct {
		spec   *ast.TypeSpec
		st     *ast.StructType
		obj    *types.TypeName
		method string
	}
	var structs []annotated
	for _, f := range sourceFiles(pass) {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				method := identityAnnotation(ts.Doc)
				if method == "" && len(gd.Specs) == 1 {
					method = identityAnnotation(gd.Doc)
				}
				if method == "" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "keyflow: //aurora:identity on non-struct type %s", ts.Name.Name)
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				pass.ExportObjectFact(obj, &identityFact{Method: method})
				structs = append(structs, annotated{spec: ts, st: st, obj: obj, method: method})
			}
		}
	}

	for _, a := range structs {
		checkIdentityStruct(pass, a.spec, a.st, a.obj, a.method)
	}
	return nil, nil
}

// checkIdentityStruct verifies one annotated struct against its identity
// method.
func checkIdentityStruct(pass *analysis.Pass, spec *ast.TypeSpec, st *ast.StructType, obj *types.TypeName, method string) {
	body := findMethodBody(pass, obj, method)
	if body == nil {
		pass.Reportf(spec.Pos(), "keyflow: identity method %s.%s not found in this package", obj.Name(), method)
		return
	}

	uses := collectFieldUses(pass, obj, body)

	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "keyflow: embedded field in identity struct %s is not supported; name it and thread it into %s", obj.Name(), method)
			continue
		}
		for _, name := range field.Names {
			checkIdentityField(pass, obj, method, field, name.Name, uses[name.Name])
		}
	}
}

func checkIdentityField(pass *analysis.Pass, obj *types.TypeName, method string, field *ast.Field, name string, use *fieldUse) {
	if waived, reason := fieldWaiver(field.Doc, field.Comment); waived {
		if reason == "" {
			pass.Reportf(field.Pos(), "keyflow: //aurora:identity(none) waiver on %s.%s requires a reason", obj.Name(), name)
		}
		return
	}
	if use == nil {
		pass.Reportf(field.Pos(),
			"keyflow: field %s.%s does not reach identity method %s; results with different %s would collide under one key — thread it into %s or waive with //aurora:identity(none, reason)",
			obj.Name(), name, method, name, method)
		return
	}
	if use.value {
		return
	}
	// Consumed only through method calls: the calls must reach the field
	// type's own declared identity method, or nothing proves the field's
	// sub-fields participate in the key.
	ft := fieldNamedType(pass, field)
	if ft == nil {
		pass.Reportf(field.Pos(),
			"keyflow: field %s.%s reaches %s only through method calls on an unannotated type; read the field's value or declare //aurora:identity on its type",
			obj.Name(), name, method)
		return
	}
	var fact identityFact
	if !pass.ImportObjectFact(ft.Obj(), &fact) {
		pass.Reportf(field.Pos(),
			"keyflow: field %s.%s reaches %s only through method calls, but %s declares no //aurora:identity method",
			obj.Name(), name, method, ft.Obj().Name())
		return
	}
	if !use.methods[fact.Method] {
		pass.Reportf(field.Pos(),
			"keyflow: field %s.%s never reaches %s's identity method %s (calls: %s)",
			obj.Name(), name, ft.Obj().Name(), fact.Method, methodList(use.methods))
	}
}

// findMethodBody returns the AST body of the named method on obj's type
// (value or pointer receiver) within this package, or nil.
func findMethodBody(pass *analysis.Pass, obj *types.TypeName, method string) *ast.BlockStmt {
	for _, f := range sourceFiles(pass) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != method || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			if namedOf(recv.Type()) == obj.Type() {
				return fd.Body
			}
		}
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the *types.Named, returned
// as a types.Type for direct comparison with TypeName.Type().
func namedOf(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// collectFieldUses walks the identity method body recording, per field of
// the annotated struct, whether it is read by value and which methods are
// called directly on it. A selector counts whenever its receiver's type is
// the annotated struct — the receiver itself, a normalized copy, or any
// other variable of that type.
func collectFieldUses(pass *analysis.Pass, obj *types.TypeName, body *ast.BlockStmt) map[string]*fieldUse {
	uses := map[string]*fieldUse{}
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return
		}
		if namedOf(selection.Recv()) != obj.Type() {
			return
		}
		name := sel.Sel.Name
		u := uses[name]
		if u == nil {
			u = &fieldUse{methods: map[string]bool{}}
			uses[name] = u
		}
		if m := calledMethod(pass, sel, stack); m != "" {
			u.methods[m] = true
		} else {
			u.value = true
		}
	})
	return uses
}

// calledMethod returns the method name when sel (a field selection) is
// exactly the receiver of a method call — parent is a SelectorExpr whose
// own parent calls it — and "" for any other (value) use.
func calledMethod(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) string {
	if len(stack) < 2 {
		return ""
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != ast.Expr(sel) {
		return ""
	}
	psel := pass.TypesInfo.Selections[parent]
	if psel == nil || psel.Kind() != types.MethodVal {
		return ""
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || call.Fun != ast.Expr(parent) {
		return "" // method value, not a call: treat as a value use
	}
	return parent.Sel.Name
}

// fieldNamedType returns the named struct type of a field declared in the
// same module (unwrapping one pointer), or nil.
func fieldNamedType(pass *analysis.Pass, field *ast.Field) *types.Named {
	t := pass.TypesInfo.TypeOf(field.Type)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return nil
	}
	if firstSeg(n.Obj().Pkg().Path()) != firstSeg(pass.Pkg.Path()) {
		return nil
	}
	return n
}

func methodList(m map[string]bool) string {
	if len(m) == 0 {
		return "none"
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic diagnostic text
	return strings.Join(names, ", ")
}
