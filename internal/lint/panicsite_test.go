package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aurora/internal/faultinject"
	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestPanicSite runs the analyzer over the sim/core fixture, which seeds a
// properly gated panic, a raw panic, a waived construction-time panic, and
// a panic nested in control flow under the gate.
func TestPanicSite(t *testing.T) {
	linttest.Run(t, "testdata", lint.PanicSite, "sim/core")
}

// TestPanicSiteInventory cross-checks the real simulator sources against
// the real injection registry: every Site constant faultinject declares
// must appear as a faultinject.Fires(faultinject.<Site>) gate somewhere in
// the simulation packages, and no gate may name an unregistered site. This
// pins the analyzer's contract to the registry — adding a ninth gated panic
// without registering its site (or retiring a site but leaving its gate)
// fails here rather than drifting silently.
func TestPanicSiteInventory(t *testing.T) {
	registered := map[string]bool{}
	for _, s := range faultinject.Sites() {
		registered[s.String()] = false // value flips to true when a gate is found
	}
	if len(registered) != int(faultinject.NumSites) {
		t.Fatalf("Sites() returned %d sites, want NumSites=%d", len(registered), faultinject.NumSites)
	}

	// Map each gate's const identifier to its registry name by parsing the
	// registry source, so the scan below can work in identifiers.
	constToName := map[string]string{}
	fset := token.NewFileSet()
	injSrc := filepath.Join("..", "faultinject", "inject.go")
	f, err := parser.ParseFile(fset, injSrc, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", injSrc, err)
	}
	for i := faultinject.Site(0); i < faultinject.NumSites; i++ {
		// Recover the const identifier for ordinal i from the declaration
		// order in the const block.
		name := constIdentAt(f, int(i))
		if name == "" {
			t.Fatalf("no Site const with ordinal %d in %s", i, injSrc)
		}
		constToName[name] = i.String()
	}

	simDirs := []string{"core", "fpu", "cache", "ipu", "mem", "prefetch", "mmu", "trace"}
	for _, dir := range simDirs {
		root := filepath.Join("..", dir)
		entries, err := os.ReadDir(root)
		if err != nil {
			continue // package not present in this tree
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(root, e.Name())
			af, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			ast.Inspect(af, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Fires" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "faultinject" {
					return true
				}
				if len(call.Args) != 1 {
					t.Errorf("%s: faultinject.Fires with %d args", fset.Position(call.Pos()), len(call.Args))
					return true
				}
				argSel, ok := call.Args[0].(*ast.SelectorExpr)
				if !ok {
					t.Errorf("%s: faultinject.Fires argument is not a faultinject.<Site> selector", fset.Position(call.Pos()))
					return true
				}
				name, ok := constToName[argSel.Sel.Name]
				if !ok {
					t.Errorf("%s: gate names unregistered site %s", fset.Position(call.Pos()), argSel.Sel.Name)
					return true
				}
				registered[name] = true
				return true
			})
		}
	}

	for name, seen := range registered {
		if !seen {
			t.Errorf("registered site %q has no faultinject.Fires gate in any simulation package", name)
		}
	}
}

// constIdentAt returns the identifier of the Site const with the given
// iota ordinal, skipping the NumSites sentinel.
func constIdentAt(f *ast.File, ordinal int) string {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		idx := 0
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if name.Name == "NumSites" {
					continue
				}
				if idx == ordinal {
					return name.Name
				}
				idx++
			}
		}
		// Only the first const block in inject.go declares sites.
		break
	}
	return ""
}
