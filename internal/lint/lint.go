// Package lint is aurora-lint: a go/analysis suite that turns the
// simulator's conventions — the zero-allocation cycle loop, byte-identical
// sweep output, faultinject-gated invariant panics and nil-guarded probes —
// into compile-time errors instead of flaky benchmark deltas.
//
// Seven aurora analyzers:
//
//   - hotpathalloc: functions annotated //aurora:hotpath (and everything
//     they statically call within the module) must contain no
//     allocation-inducing constructs.
//   - determinism: simulation packages must not read wall-clock time or
//     math/rand, and no output path may iterate a map straight into an
//     io.Writer, CSV row or metric name.
//   - panicsite: every panic in a simulation package must sit behind the
//     faultinject.Fires gating pattern, so harness.run's recovery contract
//     holds.
//   - probeguard: obs.Probe method calls outside package obs must sit
//     behind the `if p != nil` idiom that keeps the disabled probe cost at
//     one branch and zero allocations.
//   - keyflow: every field of an identity-annotated struct (core.Config,
//     bpred.Config, sample.Params, resultstore.Key) must reach the
//     struct's identity method, so config axes cannot silently miss the
//     memo/store key.
//   - ctxflow: library entry points in harness/aurora/resultstore must
//     accept and forward context.Context; no fresh root contexts outside
//     the F -> FContext wrapper idiom, no dropped ctx parameters.
//   - faultpath: recover() in sim/harness packages must convert to
//     *simfault.Fault, and persistence/artifact-writer errors must not be
//     discarded.
//
// An eighth analyzer, waiver, lints the waiver comments themselves, and
// the stock x/tools passes atomic, copylock, lostcancel, nilfunc and
// unusedresult run alongside (vendored under third_party/).
//
// A diagnostic is suppressed by a waiver comment on its line or the line
// above: //aurora:allow(token, reason), where token is the analyzer's
// waiver token (alloc, determinism, panic, probe, ctx, fault) and the
// reason is mandatory — a bare //aurora:allow(token) waives nothing and
// is itself flagged by the waiver analyzer. keyflow uses its own field
// directive //aurora:identity(none, reason). See docs/LINTING.md.
package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
)

// Analyzers returns the full aurora-lint suite in stable order: the
// repo-specific analyzers first, then the vendored stock passes (which
// `go vet` also runs; running them here keeps `make lint` sufficient on
// its own and feeds their findings into the SARIF export).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		HotPathAlloc,
		Determinism,
		PanicSite,
		ProbeGuard,
		KeyFlow,
		CtxFlow,
		FaultPath,
		Waiver,
		atomic.Analyzer,
		copylock.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		unusedresult.Analyzer,
	}
}

// HotPathAnnotation marks a function as part of the per-cycle hot path.
const HotPathAnnotation = "//aurora:hotpath"

// simPackages is the set of timing-model package names (the final import
// path segment) whose determinism and fault-isolation invariants the suite
// enforces. harness and obs are output layers: they additionally fall under
// the map-iteration-ordering rule (see outputPackages).
var simPackages = map[string]bool{
	"core":     true,
	"fpu":      true,
	"cache":    true,
	"ipu":      true,
	"bpred":    true,
	"mem":      true,
	"prefetch": true,
	"mmu":      true,
	"sample":   true,
	"trace":    true,
}

// outputPackages are the packages whose writes must be byte-identical at
// any worker count: everything a sweep's stdout/CSV/metric stream passes
// through on its way out of the process. resultstore is here because its
// on-disk entries are checksummed canonical JSON — map-ordered iteration
// anywhere in its encoding path would scramble checksums across processes.
var outputPackages = map[string]bool{
	"harness":     true,
	"obs":         true,
	"resultstore": true,
}

// lastSeg returns the final segment of an import path.
func lastSeg(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// firstSeg returns the leading segment of an import path. Two packages
// sharing it are treated as module-local: every aurora package starts with
// "aurora/", and analysistest-style fixtures use a shared root such as
// "hot/...".
func firstSeg(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// isSimPackage reports whether pkgPath is a timing-model package.
func isSimPackage(pkgPath string) bool { return simPackages[lastSeg(pkgPath)] }

// isOutputPackage reports whether pkgPath carries sweep output.
func isOutputPackage(pkgPath string) bool { return outputPackages[lastSeg(pkgPath)] }

// allowRE matches only well-formed waivers: token AND a non-empty reason.
// A reasonless //aurora:allow(token) deliberately fails to match — the
// original diagnostic then fires, and the waiver analyzer names the cause.
// Text after the closing paren is ignored (fixtures hang // want there).
var allowRE = regexp.MustCompile(`^//aurora:allow\(([a-z]+),\s*[^)\s][^)]*\)`)

// sourceFiles returns the pass's non-test files. The suite's invariants
// govern shipped simulator code; tests freely use rand, raw panics and
// unguarded probes.
func sourceFiles(pass *analysis.Pass) []*ast.File {
	var out []*ast.File
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// waivers records, per file line, which analyzer tokens are waived there.
type waivers map[int]map[string]bool

// collectWaivers scans every comment in the pass's files for
// //aurora:allow(token) markers. A marker waives its own line and, when it
// is the only thing on its line, the line below — the two places gofmt
// leaves such a comment.
func collectWaivers(pass *analysis.Pass) waivers {
	w := waivers{}
	add := func(line int, tok string) {
		m := w[line]
		if m == nil {
			m = map[string]bool{}
			w[line] = m
		}
		m[tok] = true
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				sub := allowRE.FindStringSubmatch(c.Text)
				if sub == nil {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				add(pos.Line, sub[1])
				add(pos.Line+1, sub[1])
			}
		}
	}
	return w
}

// allowed reports whether token is waived at pos.
func (w waivers) allowed(pass *analysis.Pass, pos token.Pos, tok string) bool {
	return w[pass.Fset.Position(pos).Line][tok]
}

// report emits a diagnostic unless a waiver covers it.
func report(pass *analysis.Pass, w waivers, pos token.Pos, tok, msg string) {
	if w.allowed(pass, pos, tok) {
		return
	}
	pass.Reportf(pos, "%s", msg)
}

// hasAnnotation reports whether the doc comment group carries the marker
// directive (exact text on its own comment line).
func hasAnnotation(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
