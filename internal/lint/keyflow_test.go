package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestKeyFlow runs the identity-flow analyzer over the key fixtures:
// key/dep exports the identityFact for Sub (and deliberately none for
// Plain) that key/a consumes, exercising the cross-package fact flow that
// lets core.Config.BPred prove coverage through bpred.Config.Key.
func TestKeyFlow(t *testing.T) {
	linttest.Run(t, "testdata", lint.KeyFlow, "key/dep", "key/a")
}
