package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestHotPathAlloc runs the allocation analyzer over the hot fixtures:
// hot/dep exports the cross-package isHotPath facts that hot/a consumes,
// exercising the same fact flow `go vet` threads between packages.
func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, "testdata", lint.HotPathAlloc, "hot/dep", "hot/a")
}
