// Package a seeds the waiver analyzer: every malformed directive shape the
// grammar rejects, plus the legal forms that must stay silent.
package a

// Legal allow waiver: token and reason. Silent.
//
//aurora:allow(alloc, fixture: a real reason)
var ok1 int

// Reasonless allow: the strict waiver regexp no longer honours it, and the
// waiver analyzer names the cause.
//
//aurora:allow(alloc) // want `waiver: //aurora:allow\(alloc\) requires a reason`
var bad1 int

// Unknown token.
//
//aurora:allow(bogus, some reason) // want `waiver: unknown token "bogus" in //aurora:allow`
var bad2 int

// No parentheses at all.
//
//aurora:allow alloc // want `waiver: malformed aurora directive`
var bad3 int

// Legal type-level identity directive. Silent (keyflow checks the method
// exists; it does here).
//
//aurora:identity(Key)
type T struct{ N int }

// Key is T's identity method.
func (t T) Key() int { return t.N }

// Field waiver without a reason.
//
//aurora:identity(FieldBag)
type U struct {
	//aurora:identity(none) // want `waiver: //aurora:identity\(none\) requires a reason`
	Skipped int

	//aurora:identity(none, fixture: label only)
	Label string

	Kept int
}

// FieldBag is U's identity method.
func (u U) FieldBag() int { return u.Kept }

// Identity directive with an illegal method name.
//
//aurora:identity(bad name, x) // want `waiver: malformed //aurora:identity directive`
var bad4 int
