// Package faultinject mirrors the real injection registry's API shape for
// the panicsite fixture.
package faultinject

// Site enumerates guarded invariant-panic sites.
type Site uint8

// Fixture sites.
const (
	ROBOverflow Site = iota
	QueueFull
)

// Fires reports whether the site is armed.
func Fires(s Site) bool { return false }
