// Package dep is a fixture dependency: its annotation facts must be
// visible to the dependent package hot/a.
package dep

// Fast is annotated, so hot-path callers in other packages may use it.
//
//aurora:hotpath
func Fast(x int) int { return x + 1 }

// Slow is not annotated; hot-path callers must not use it.
func Slow(x int) int { return x * 2 }
