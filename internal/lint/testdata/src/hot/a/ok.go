package a

import "hot/dep"

// step is fully compliant: index arithmetic into reused storage, calls to
// annotated functions only, pointer-shaped and constant interface
// arguments, and an explicitly waived steady-state append.
//
//aurora:hotpath
func step(r *ring) uint64 {
	r.buf[r.n&7]++
	r.n++
	_ = dep.Fast(r.n)
	sub()
	box(r)          // pointer-shaped: stored in the interface word directly
	box(nil)        // nil: no boxing
	box(3)          // constant: materialized in read-only data
	v := ring{n: 1} // value composite literal stays on the stack
	//aurora:allow(alloc, fixture: steady-state capacity)
	r.spill = append(r.spill, uint64(v.n))
	return r.buf[0]
}

// cold is not annotated, so nothing in it is checked.
func cold(r *ring) []uint64 {
	out := make([]uint64, 0, r.n)
	return append(out, r.buf[:]...)
}
