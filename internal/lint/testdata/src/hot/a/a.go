// Package a seeds one violation of every construct hotpathalloc bans,
// plus the compliant counterparts in ok.go.
package a

import "hot/dep"

type ring struct {
	buf   [8]uint64
	n     int
	spill []uint64
	name  string
}

//aurora:hotpath
func box(v interface{}) {}

//aurora:hotpath
func sub() {}

func helper(x int) int { return x }

//aurora:hotpath
func bad(r *ring, bs []byte, s string) {
	_ = dep.Slow(r.n)     // want `call to non-hotpath function hot/dep.Slow`
	_ = helper(r.n)       // want `call to non-hotpath function hot/a.helper`
	f := func() { sub() } // want `closure literal allocates`
	f()
	m := map[int]int{} // want `map literal allocates`
	_ = m
	sl := []uint64{1, 2} // want `slice literal allocates`
	_ = sl
	p := &ring{} // want `&composite literal escapes to the heap`
	_ = p
	b := make([]byte, r.n) // want `make allocates`
	_ = b
	q := new(ring) // want `new allocates`
	_ = q
	r.spill = append(r.spill, 1) // want `append may grow its backing array`
	box(r.n)                     // want `int boxes into interface`
	_ = s + r.name               // want `string concatenation allocates`
	_ = string(bs)               // want `string conversion allocates`
	defer sub()                  // want `defer is banned`
	go sub()                     // want `go statement is banned`
}

//aurora:hotpath
func debugDump(r *ring) {
	print(r.name, ": ", r.n) // println/print are allocation-free runtime calls
}
