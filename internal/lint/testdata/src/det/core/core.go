// Package core (a simulation package by name) seeds the determinism
// violations: wall-clock reads, math/rand, and a map range that reaches
// an io.Writer.
package core

import (
	"fmt"
	"io"
	"math/rand" // want `math/rand is banned in simulation packages`
	"sort"
	"time"
)

func tick() uint64 {
	t := time.Now()    // want `time.Now reads the host clock`
	d := time.Since(t) // want `time.Since reads the host clock`
	_ = rand.Int()
	return uint64(d)
}

func dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output`
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

func dumpWrites(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration order reaches output`
		w.Write([]byte(k))
	}
}

// dumpSorted is the compliant idiom: collect, sort, then range the slice.
func dumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// sum never lets the iteration order escape; order-independent folds are
// fine.
func sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// waived demonstrates the escape hatch.
func waived(w io.Writer, m map[string]int) {
	//aurora:allow(determinism, fixture: single-entry map)
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
