// Package util is outside the determinism scope (neither a simulation nor
// an output package), so its wall-clock read and raw map print draw no
// diagnostics.
package util

import (
	"fmt"
	"io"
	"time"
)

func Stamp() int64 { return time.Now().Unix() }

func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}
