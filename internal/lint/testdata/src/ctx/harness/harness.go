// Package harness (an in-scope package by name) seeds ctxflow's true
// positives and the compliant idioms.
package harness

import "context"

// RunContext is the real entry point: it accepts and forwards ctx.
func RunContext(ctx context.Context, n int) int {
	select {
	case <-ctx.Done():
		return 0
	default:
		return n
	}
}

// Run is the convenience-wrapper idiom: a single return forwarding to the
// Context-suffixed variant. Allowed.
func Run(n int) int {
	return RunContext(context.Background(), n)
}

// sneaky builds a fresh root context mid-function: the caller's
// cancellation chain is severed.
func sneaky(n int) int {
	ctx := context.Background() // want `context.Background in library code severs`
	return RunContext(ctx, n)
}

// todoToo is just as bad with TODO.
func todoToo(n int) int {
	return RunContext(context.TODO(), n) // want `context.TODO in library code severs`
}

// waived carries a reviewed reason.
func waived(n int) int {
	//aurora:allow(ctx, fixture: deliberate detachment)
	return RunContext(context.Background(), n)
}

// dropped declares a context it never reads.
func dropped(ctx context.Context, n int) int { // want `context parameter ctx is never forwarded`
	return n
}

// blank drops the context in the signature itself.
func blank(_ context.Context, n int) int { // want `context parameter is dropped`
	return n
}

// forwarded uses its context through a closure: compliant.
func forwarded(ctx context.Context, n int) int {
	f := func() int { return RunContext(ctx, n) }
	return f()
}

// notAWrapper has a Context-suffixed target but extra statements, so the
// wrapper exemption does not apply.
func notAWrapper(n int) int {
	n++
	return RunContext(context.Background(), n) // want `context.Background in library code severs`
}
