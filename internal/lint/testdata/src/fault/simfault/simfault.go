// Package simfault is the fixture stand-in for the real typed-fault
// package: faultpath recognises it by its final import-path segment.
package simfault

// Fault is the typed fault.
type Fault struct{ Msg string }

// Error implements error.
func (f *Fault) Error() string { return f.Msg }

// FromPanic converts a recovered value.
func FromPanic(v interface{}) *Fault {
	if f, ok := v.(*Fault); ok {
		return f
	}
	return &Fault{Msg: "panic"}
}
