// Package harness (in recover scope by name) seeds faultpath's true
// positives and the compliant recover/persist idioms.
package harness

import (
	"encoding/csv"
	"io"

	"fault/resultstore"
	"fault/simfault"
)

var lastPanic string

// runTyped is the compliant recovery contract: the recovered value is
// converted to a *simfault.Fault before it escapes.
func runTyped(job func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = simfault.FromPanic(r)
		}
	}()
	job()
	return nil
}

// runRaw swallows the panic into a string: the job identity is stripped.
func runRaw(job func()) (err error) {
	defer func() {
		if r := recover(); r != nil { // want `faultpath: recover\(\) does not convert to \*simfault\.Fault`
			lastPanic = "lost"
		}
	}()
	job()
	return nil
}

// persist exercises the discard checks against the fixture store.
func persist(st *resultstore.Store, key string) error {
	// Handled: compliant.
	if err := st.Save(key); err != nil {
		return err
	}

	// Ignored return on an expression statement.
	st.Put(key) // want `faultpath: error from Put is discarded \(return value is ignored\)`

	// Parked on the blank identifier.
	_ = st.Save(key) // want `faultpath: error from Save is discarded \(assigned to _\)`

	// Multi-result call with the error blanked at index 1.
	n, _ := st.SaveSampled(key) // want `faultpath: error from SaveSampled is discarded \(assigned to _\)`
	_ = n

	// Waived with a reason: the store counts the failure itself.
	//aurora:allow(fault, fixture: failure is counted in Stats.PutErrors)
	_ = st.Save(key)

	// No error result: never flagged.
	st.Hint(key)
	return nil
}

// Store mirrors the real harness interface; calls through it resolve to
// this interface method object, not a static callee.
type Store interface {
	Save(key string) error
}

// persistIface discards through the interface.
func persistIface(st Store, key string) {
	_ = st.Save(key) // want `faultpath: error from Save is discarded \(assigned to _\)`
}

// export drops a csv.Writer error, publishing a truncated artifact.
func export(w io.Writer, rec []string) {
	cw := csv.NewWriter(w)
	_ = cw.Write(rec) // want `faultpath: error from Write is discarded \(assigned to _\)`
	cw.Flush()
}
