// Package resultstore is the fixture persistence layer: faultpath protects
// the error results of its Save*/Put* family by package-name match.
package resultstore

// Store persists results.
type Store struct{ fail bool }

// Save persists one result.
func (s *Store) Save(key string) error {
	if s.fail {
		return errFail
	}
	return nil
}

// SaveSampled persists a sampled result and reports how many points landed:
// the error sits at index 1, exercising the multi-result discard check.
func (s *Store) SaveSampled(key string) (int, error) {
	if s.fail {
		return 0, errFail
	}
	return 1, nil
}

// Put persists a raw entry.
func (s *Store) Put(key string) error {
	if s.fail {
		return errFail
	}
	return nil
}

// Hint returns nothing: calls to it are never flagged.
func (s *Store) Hint(key string) {}

type storeError string

func (e storeError) Error() string { return string(e) }

var errFail error = storeError("store failed")
