// Package dep is a fixture dependency for keyflow: Sub declares its
// identity method, so dependent packages consuming a Sub field through
// Sub.Key() satisfy the cross-package fact check; Plain declares none.
package dep

// Sub is a nested configuration axis with a declared identity.
//
//aurora:identity(Key)
type Sub struct {
	Entries int
	Bits    int
}

// IsDefault reports whether the axis is disabled.
func (s Sub) IsDefault() bool { return s == Sub{} }

// Key renders the identity; both fields reach it.
func (s Sub) Key() string {
	return "sub/" + itoa(s.Entries) + "/" + itoa(s.Bits)
}

// Plain has no identity annotation: consuming a Plain field only through
// its methods proves nothing about Plain's own fields.
type Plain struct {
	N int
}

// Tag is a method, not an identity.
func (p Plain) Tag() string { return itoa(p.N) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
