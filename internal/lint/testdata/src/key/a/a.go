// Package a seeds keyflow's true positives and compliant idioms: a config
// struct whose identity method consumes most — but not all — of its
// fields, nested axes consumed through their identity methods, and the
// field-waiver forms.
package a

import "key/dep"

// Config is the identity struct under test.
//
//aurora:identity(Fingerprint)
type Config struct {
	// Name labels a point, it does not key results.
	//aurora:identity(none, labels an experiment point; excluded like core.Config.Name)
	Name string

	CacheBytes int
	Ways       int

	// Forgotten never reaches Fingerprint: the PR 8 bug shape.
	Forgotten int // want `field Config.Forgotten does not reach identity method Fingerprint`

	// BadWaiver carries the directive but no reason.
	//aurora:identity(none)
	BadWaiver int // want `waiver on Config.BadWaiver requires a reason`

	// Sub is consumed only through dep.Sub methods, one of which is its
	// declared identity — compliant via the imported fact.
	Sub dep.Sub

	// Wrong is consumed only through a non-identity method.
	Wrong dep.Sub // want `field Config.Wrong never reaches Sub's identity method Key`

	// Opaque is consumed only through methods of a type that declares no
	// identity at all.
	Opaque dep.Plain // want `Opaque reaches Fingerprint only through method calls, but Plain declares no`

	// ByValue flows wholesale into the rendered string: its sub-fields are
	// covered by the by-value rendering, no annotation needed.
	ByValue dep.Plain
}

// Fingerprint renders the identity.
func (c Config) Fingerprint() string {
	fp := "cache:" + itoa(c.CacheBytes) + "/" + itoa(c.Ways)
	if !c.Sub.IsDefault() {
		fp += " sub:" + c.Sub.Key()
	}
	if c.Wrong.IsDefault() {
		fp += " wrong"
	}
	if c.Opaque.Tag() != "" {
		fp += " opaque"
	}
	fp += render(c.ByValue)
	return fp
}

func render(p dep.Plain) string { return "+" + itoa(p.N) }

// Broken declares an identity method that does not exist.
//
//aurora:identity(Key)
type Broken struct { // want `identity method Broken.Key not found in this package`
	X int
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
