// Package probes exercises every guard shape probeguard recognizes, plus
// the unguarded violations.
package probes

import "obs"

type unit struct {
	probe *obs.Probe
	n     uint64
}

func (u *unit) tick(now uint64) {
	u.probe.Counter("early", now) // want `obs.Probe call is not behind an .if u.probe != nil. guard`
	if u.probe != nil {
		u.probe.Instant("a", "guarded", now) // compliant: enclosing != nil
	}
	if u.probe != nil && now > 0 {
		u.probe.Counter("b", now) // compliant: conjunction still guards
	}
	if u.probe == nil {
		u.n++
	} else {
		u.probe.Counter("c", now) // compliant: else of == nil
	}
	if u.probe.Enabled() {
		u.probe.Instant("d", "enabled", now) // compliant: Enabled is the guard
	}
	_ = u.probe.Enabled() // compliant: Enabled itself is exempt
}

func (u *unit) flush(now uint64) {
	if u.probe == nil {
		return
	}
	u.probe.Counter("e", now) // compliant: dominated by the guard clause
}

func (u *unit) mixed(other *obs.Probe, now uint64) {
	if u.probe != nil {
		other.Counter("f", now) // want `obs.Probe call is not behind an .if other != nil. guard`
	}
	//aurora:allow(probe, fixture: waiver)
	other.Counter("g", now)
}
