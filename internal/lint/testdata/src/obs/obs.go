// Package obs mirrors the real observability probe's API shape for the
// probeguard fixture. The analyzer skips packages named obs, so the
// receiver nil checks here draw no diagnostics.
package obs

// Probe is the nil-guarded telemetry fast path.
type Probe struct {
	sink  func(uint64)
	clock *uint64
}

// Enabled reports whether the probe delivers anywhere.
func (p *Probe) Enabled() bool { return p != nil }

// Instant emits a point event.
func (p *Probe) Instant(cat, name string, v uint64) {
	if p == nil {
		return
	}
	p.sink(v)
}

// Counter emits a counter update.
func (p *Probe) Counter(name string, v uint64) {
	if p == nil {
		return
	}
	p.sink(v)
}
