// Package core (a simulation package by name) seeds gated, raw and waived
// panic sites for the panicsite analyzer.
package core

import "faultinject"

type rob struct{ used, size int }

// alloc panics behind the registered gating pattern: compliant.
func (r *rob) alloc() int {
	if r.used >= r.size || faultinject.Fires(faultinject.ROBOverflow) {
		panic("core: ROB overflow")
	}
	r.used++
	return r.used - 1
}

// release panics raw: a fault the recovery sweep could never exercise.
func (r *rob) release() {
	if r.used == 0 {
		panic("core: release without alloc") // want `panic is not faultinject-gated`
	}
	r.used--
}

// newROB demonstrates the construction-time waiver.
func newROB(size int) *rob {
	if size <= 0 {
		//aurora:allow(panic, fixture: construction-time validation)
		panic("core: bad size")
	}
	return &rob{size: size}
}

// deepGate nests the panic inside further control flow under the gated if;
// still compliant.
func (r *rob) deepGate(n int) {
	if r.used+n > r.size || faultinject.Fires(faultinject.QueueFull) {
		for i := 0; i < n; i++ {
			if i == 0 {
				panic("core: queue full")
			}
		}
	}
}
