package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// PanicSite enforces the fault-isolation contract: every panic in a
// timing-model package must be one of the faultinject-registered invariant
// sites, i.e. sit in the body of an if whose condition ORs the real
// invariant check with faultinject.Fires(<site>). harness.run recovers
// such panics at the job boundary and turns them into per-cell faults; a
// raw panic at an unregistered site would still be recovered, but could
// never be exercised by the fault-injection test sweep, so its recovery
// path would ship untested. Construction-time validation panics that run
// before a simulation starts may be waived with //aurora:allow(panic).
var PanicSite = &analysis.Analyzer{
	Name: "panicsite",
	Doc:  "check that simulation-package panics are faultinject-gated",
	Run:  runPanicSite,
}

const panicTok = "panic"

// inspectWithStack walks root, calling fn with each node and its ancestor
// chain (outermost first, excluding n itself).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

func runPanicSite(pass *analysis.Pass) (interface{}, error) {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	w := collectWaivers(pass)

	for _, f := range sourceFiles(pass) {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPanicCall(pass, call) {
				return
			}
			if !gatedByFires(pass, n, stack) {
				report(pass, w, call.Pos(), panicTok,
					"panicsite: panic is not faultinject-gated; register a site or waive construction-time validation")
			}
		})
	}
	return nil, nil
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// gatedByFires reports whether some enclosing if statement both (a) holds
// the panic in its body and (b) calls faultinject.Fires in its condition.
func gatedByFires(pass *analysis.Pass, n ast.Node, stack []ast.Node) bool {
	for i, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		var child ast.Node = n
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		if child != ast.Node(ifs.Body) {
			continue
		}
		if condCallsFires(pass, ifs.Cond) {
			return true
		}
	}
	return false
}

func condCallsFires(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := typeutil.StaticCallee(pass.TypesInfo, call)
		if callee != nil && callee.Name() == "Fires" &&
			callee.Pkg() != nil && lastSeg(callee.Pkg().Path()) == "faultinject" {
			found = true
			return false
		}
		return true
	})
	return found
}
