package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestWaiver runs the waiver-grammar analyzer over the waive fixture:
// reasonless waivers, unknown tokens and malformed directives are named;
// the legal forms stay silent.
func TestWaiver(t *testing.T) {
	linttest.Run(t, "testdata", lint.Waiver, "waive/a")
}

// TestWaiverInventory pins the waiver population of the shipped tree: which
// files opt out of which invariant, and how many times. Adding a waiver is
// a reviewed decision — update the table here with the new entry. Removing
// one (an invariant regained) updates it too, downward.
func TestWaiverInventory(t *testing.T) {
	entries, err := lint.WaiverInventory("../..")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		"internal/cache/cache.go|panic":       1, // construction-time validation
		"internal/cache/writecache.go|panic":  1, // construction-time validation
		"internal/core/config.go|identity":    1, // Config.Name labels, never keys
		"internal/harness/runner.go|fault":    2, // persist failures counted in Stats.PutErrors
		"internal/harness/sampled.go|fault":   2, // persist failures counted in Stats.PutErrors
		"internal/ipu/ifu.go|alloc":           1, // steady-state buffers
		"internal/ipu/lsu.go|alloc":           3, // pooled MemOps
		"internal/mem/biu.go|alloc":           2, // steady-state buffers
		"internal/sample/checkpoint.go|panic": 1, // corruption guard
	}
	got := map[string]int{}
	for _, e := range entries {
		got[e.File+"|"+e.Token]++
		if e.Reason == "" {
			t.Errorf("%s:%d: waiver without a reason", e.File, e.Line)
		}
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("waivers at %s: got %d, want %d", k, got[k], n)
		}
	}
	for k, n := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unpinned waivers at %s (%d): add them to the table with a review", k, n)
		}
	}
	if len(entries) != 14 {
		t.Errorf("total waivers = %d, want 14", len(entries))
	}
}
