package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// HotPathAlloc enforces the zero-allocation cycle loop. Functions annotated
// //aurora:hotpath must contain none of the constructs that made the
// pre-PR-3 loop allocate — escaping closures, map/slice literals, &T{}
// literals, make/new, append growth, interface boxing at call sites, fmt,
// string concatenation or conversion, defer, go — and every static call
// they make to a module-local function must target another annotated
// (hence equally checked) hot-path function. Annotations on callees in
// imported packages are carried across package boundaries as analysis
// facts, so the whole per-cycle call graph is covered without whole-program
// analysis. Dynamic calls (interface methods, func values) cannot be
// resolved statically and are not checked; the benchmark guard
// TestCycleLoopZeroAlloc remains the backstop for those.
var HotPathAlloc = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "check //aurora:hotpath functions for allocation-inducing constructs",
	Run:       runHotPathAlloc,
	FactTypes: []analysis.Fact{new(isHotPath)},
}

// isHotPath marks a function object as //aurora:hotpath-annotated, making
// the annotation visible to dependent packages' passes.
type isHotPath struct{}

func (*isHotPath) AFact()         {}
func (*isHotPath) String() string { return "hotpath" }

const allocTok = "alloc"

func runHotPathAlloc(pass *analysis.Pass) (interface{}, error) {
	w := collectWaivers(pass)

	// Pass 1: find every annotated function and export the fact before any
	// body is checked, so intra-package calls in either direction resolve.
	hot := map[*types.Func]bool{}
	var bodies []*ast.FuncDecl
	for _, f := range sourceFiles(pass) {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasAnnotation(fd.Doc, HotPathAnnotation) {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			hot[fn] = true
			pass.ExportObjectFact(fn, new(isHotPath))
			if fd.Body != nil {
				bodies = append(bodies, fd)
			}
		}
	}

	c := &hotChecker{pass: pass, w: w, hot: hot}
	for _, fd := range bodies {
		c.checkBody(fd.Body)
	}
	return nil, nil
}

type hotChecker struct {
	pass *analysis.Pass
	w    waivers
	hot  map[*types.Func]bool
}

func (c *hotChecker) report(pos token.Pos, format string, args ...interface{}) {
	report(c.pass, c.w, pos, allocTok, fmt.Sprintf(format, args...))
}

func (c *hotChecker) checkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "hot path: closure literal allocates")
			return false // its body is not part of the checked hot path
		case *ast.DeferStmt:
			c.report(n.Pos(), "hot path: defer is banned")
		case *ast.GoStmt:
			c.report(n.Pos(), "hot path: go statement is banned")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.report(n.Pos(), "hot path: &composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			switch c.typeOf(n).Underlying().(type) {
			case *types.Map:
				c.report(n.Pos(), "hot path: map literal allocates")
			case *types.Slice:
				c.report(n.Pos(), "hot path: slice literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !c.isConst(n) && isString(c.typeOf(n)) {
				c.report(n.Pos(), "hot path: string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(c.typeOf(n.Lhs[0])) {
				c.report(n.Pos(), "hot path: string concatenation allocates")
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

func (c *hotChecker) typeOf(e ast.Expr) types.Type {
	if t := c.pass.TypesInfo.TypeOf(e); t != nil {
		return t
	}
	return types.Typ[types.Invalid]
}

func (c *hotChecker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// pointerShaped reports whether converting t to an interface stores the
// value directly in the interface word, i.e. without allocating.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	if ok && tv.IsBuiltin() {
		c.checkBuiltin(call)
		return
	}

	callee := typeutil.StaticCallee(c.pass.TypesInfo, call)
	if callee != nil {
		callee = callee.Origin()
	}
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		// One diagnostic for the whole call; skip the per-argument boxing
		// reports its interface parameters would otherwise add.
		c.report(call.Pos(), "hot path: call into fmt")
		return
	}

	// Interface boxing at the call site: a non-constant concrete value
	// whose representation does not fit the interface word must be heap-
	// boxed to become an interface argument.
	if sig, ok := c.typeOf(call.Fun).Underlying().(*types.Signature); ok {
		c.checkBoxing(call, sig)
	}

	if callee == nil {
		return // dynamic: interface method or func value
	}
	pkg := callee.Pkg()
	if pkg == nil || pkg == types.Unsafe {
		return
	}
	if pkg == c.pass.Pkg {
		if !c.hot[callee] {
			c.report(call.Pos(), "hot path: call to non-hotpath function %s", callee.FullName())
		}
		return
	}
	if firstSeg(pkg.Path()) == firstSeg(c.pass.Pkg.Path()) {
		if !c.pass.ImportObjectFact(callee, new(isHotPath)) {
			c.report(call.Pos(), "hot path: call to non-hotpath function %s", callee.FullName())
		}
	}
	// Calls out of the module (standard library, except fmt above) are
	// allowed; the constructs they would be used for are caught directly.
}

func (c *hotChecker) checkBoxing(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding an existing slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := c.typeOf(arg)
		if types.IsInterface(at) || c.isConst(arg) || pointerShaped(at) || at == types.Typ[types.Invalid] {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		c.report(arg.Pos(), "hot path: %s boxes into interface %s", at, pt)
	}
}

func (c *hotChecker) checkBuiltin(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	switch id.Name {
	case "append":
		c.report(call.Pos(), "hot path: append may grow its backing array")
	case "new":
		c.report(call.Pos(), "hot path: new allocates")
	case "make":
		c.report(call.Pos(), "hot path: make allocates")
	}
}

func (c *hotChecker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	at := c.typeOf(arg)
	if types.IsInterface(to) {
		if !types.IsInterface(at) && !c.isConst(arg) && !pointerShaped(at) {
			c.report(arg.Pos(), "hot path: %s boxes into interface %s", at, to)
		}
		return
	}
	if c.isConst(arg) {
		return
	}
	fromStr, toStr := isString(at), isString(to)
	_, fromSlice := at.Underlying().(*types.Slice)
	_, toSlice := to.Underlying().(*types.Slice)
	if (fromStr && toSlice) || (fromSlice && toStr) {
		c.report(call.Pos(), "hot path: string conversion allocates")
	}
}
