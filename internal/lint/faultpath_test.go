package lint_test

import (
	"testing"

	"aurora/internal/lint"
	"aurora/internal/lint/linttest"
)

// TestFaultPath runs the fault-isolation analyzer over the fault fixtures:
// fault/harness recovers panics (typed and raw) and discards persistence
// errors from the fixture resultstore, a harness-local Store interface and
// a real encoding/csv writer.
func TestFaultPath(t *testing.T) {
	linttest.Run(t, "testdata", lint.FaultPath, "fault/simfault", "fault/resultstore", "fault/harness")
}
