package lint

import (
	"go/ast"
	"go/types"
	"strconv"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Determinism enforces the property that makes memoized sweep cells
// byte-identical at any worker count. In the timing-model packages (core,
// fpu, cache, ipu, mem, prefetch, mmu, trace) it bans wall-clock reads
// (time.Now and friends) and math/rand entirely — a simulated machine has
// no business consulting host time or host entropy. In those packages plus
// the output layers (harness, obs) it bans ranging over a map directly
// into an io.Writer, CSV row or metric emission: map iteration order is
// randomized per process, so such a loop produces different bytes on every
// run. Collect the keys, sort them, and range the sorted slice instead.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "check simulation and output packages for nondeterminism sources",
	Run:  runDeterminism,
}

const detTok = "determinism"

// wallClockFuncs are the time-package functions that read the host clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// outputMethods are method names through which a value reaches an
// io.Writer, a CSV row or a metric/trace sink.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteAll": true, "Encode": true, "Event": true, "Sample": true,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	sim := isSimPackage(pass.Pkg.Path())
	if !sim && !isOutputPackage(pass.Pkg.Path()) {
		return nil, nil
	}
	w := collectWaivers(pass)

	for _, f := range sourceFiles(pass) {
		if sim {
			for _, imp := range f.Imports {
				path, _ := strconv.Unquote(imp.Path.Value)
				if path == "math/rand" || path == "math/rand/v2" {
					report(pass, w, imp.Pos(), detTok,
						"determinism: math/rand is banned in simulation packages")
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sim {
					checkWallClock(pass, w, n)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, w, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkWallClock(pass *analysis.Pass, w waivers, call *ast.CallExpr) {
	callee := typeutil.StaticCallee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if callee.Pkg().Path() == "time" && wallClockFuncs[callee.Name()] {
		report(pass, w, call.Pos(), detTok,
			"determinism: time."+callee.Name()+" reads the host clock in a simulation package")
	}
}

func checkMapRange(pass *analysis.Pass, w waivers, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	// The range itself is fine (e.g. summing values); it becomes a
	// determinism bug only when the iteration order can reach output.
	var hit ast.Node
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if callee := typeutil.StaticCallee(pass.TypesInfo, call); callee != nil &&
			callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			hit = n
			return false
		}
		if pass.TypesInfo.Selections[sel] != nil && outputMethods[sel.Sel.Name] {
			hit = n
			return false
		}
		return true
	})
	if hit != nil {
		report(pass, w, rng.Pos(), detTok,
			"determinism: map iteration order reaches output; sort the keys and range the slice")
	}
}
