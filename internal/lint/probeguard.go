package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// ProbeGuard enforces the disabled-probe cost contract from the
// observability layer: every obs.Probe method call outside package obs
// must sit behind the nil-guard idiom — `if p != nil { p.Instant(...) }` —
// so that the call's arguments (category strings, track names, computed
// payloads) are never even built when observability is off. Probe methods
// nil-check their receivers internally, so an unguarded call is correct
// but silently re-introduces argument-construction cost on the 3ns/0-alloc
// disabled path. Recognized guard shapes, matched on the receiver
// expression's exact text:
//
//	if p != nil { ... p.M(...) ... }
//	if p == nil { ... } else { ... p.M(...) ... }
//	if p.Enabled() { ... p.M(...) ... }
//	if p == nil { return }   // earlier in any enclosing block
//
// Enabled itself is exempt: it is the guard.
var ProbeGuard = &analysis.Analyzer{
	Name: "probeguard",
	Doc:  "check that obs.Probe calls sit behind the nil-guard idiom",
	Run:  runProbeGuard,
}

const probeTok = "probe"

func runProbeGuard(pass *analysis.Pass) (interface{}, error) {
	if lastSeg(pass.Pkg.Path()) == "obs" {
		return nil, nil // the implementation guards its own receivers
	}
	w := collectWaivers(pass)

	for _, f := range sourceFiles(pass) {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isProbeRecv(pass, sel.X) || sel.Sel.Name == "Enabled" {
				return
			}
			recv := types.ExprString(sel.X)
			if !probeGuarded(pass, recv, n, stack) {
				report(pass, w, call.Pos(), probeTok,
					"probeguard: obs.Probe call is not behind an `if "+recv+" != nil` guard")
			}
		})
	}
	return nil, nil
}

// isProbeRecv reports whether e has type *obs.Probe.
func isProbeRecv(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Probe" && obj.Pkg() != nil && lastSeg(obj.Pkg().Path()) == "obs"
}

// probeGuarded walks the ancestor chain looking for a guard that dominates
// the call.
func probeGuarded(pass *analysis.Pass, recv string, n ast.Node, stack []ast.Node) bool {
	for i, anc := range stack {
		var child ast.Node = n
		if i+1 < len(stack) {
			child = stack[i+1]
		}
		switch anc := anc.(type) {
		case *ast.IfStmt:
			if child == ast.Node(anc.Body) && condGuards(recv, anc.Cond, token.NEQ) {
				return true
			}
			if anc.Else != nil && child == anc.Else && condGuards(recv, anc.Cond, token.EQL) {
				return true
			}
		case *ast.BlockStmt:
			// A preceding `if recv == nil { return }` guard clause
			// dominates everything after it in the block.
			for _, stmt := range anc.List {
				if stmt == child {
					break
				}
				if guardClause(recv, stmt) {
					return true
				}
			}
		}
	}
	return false
}

// condGuards reports whether cond contains `recv <op> nil` (op NEQ or EQL)
// or, for NEQ, the equivalent `recv.Enabled()`.
func condGuards(recv string, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == op && (nilCheckMatches(recv, n.X, n.Y) || nilCheckMatches(recv, n.Y, n.X)) {
				found = true
				return false
			}
		case *ast.CallExpr:
			if op != token.NEQ {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Enabled" && types.ExprString(sel.X) == recv {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func nilCheckMatches(recv string, x, y ast.Expr) bool {
	id, ok := ast.Unparen(y).(*ast.Ident)
	return ok && id.Name == "nil" && types.ExprString(x) == recv
}

// guardClause reports whether stmt is `if recv == nil { <terminal> }`,
// where the body's last statement leaves the enclosing block.
func guardClause(recv string, stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return false
	}
	if !condGuards(recv, ifs.Cond, token.EQL) {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}
