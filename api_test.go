package aurora

import (
	"strings"
	"testing"
)

// Direct tests of the public API surface (the integration tests exercise it
// end to end; these pin the contract details).

func TestModelByName(t *testing.T) {
	for name, icache := range map[string]int{
		"small": 1024, "baseline": 2048, "base": 2048,
		"large": 4096, "pointE": 4096, "e": 4096,
	} {
		cfg, err := ModelByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if cfg.ICacheBytes != icache {
			t.Errorf("%s: icache %d want %d", name, cfg.ICacheBytes, icache)
		}
	}
	if _, err := ModelByName("huge"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestWorkloadAccessors(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 15 {
		t.Fatalf("%d workloads", len(names))
	}
	for _, n := range names {
		w, err := GetWorkload(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != n {
			t.Errorf("name mismatch %q vs %q", w.Name, n)
		}
	}
	if len(IntegerSuite()) != 6 || len(FPSuite()) != 9 {
		t.Error("suite sizes wrong")
	}
	if IntegerSuite()[0].Name != "espresso" || FPSuite()[0].Name != "alvinn" {
		t.Error("paper table ordering broken")
	}
}

func TestCostAPI(t *testing.T) {
	b, err := Cost(Baseline())
	if err != nil || b != 73084 {
		t.Errorf("baseline cost %d, %v", b, err)
	}
	bad := Baseline()
	bad.ICacheBytes = 999
	if _, err := Cost(bad); err == nil {
		t.Error("invalid icache size accepted")
	}
	if c := FPUCost(DefaultFPU()); c != 14613 {
		t.Errorf("recommended FPU cost %d want 14613", c)
	}
}

func TestDefaultConfigs(t *testing.T) {
	f := DefaultFPU()
	if f.InstrQueue != 5 || f.LoadQueue != 2 || f.ReorderBuffer != 6 ||
		f.AddLatency != 3 || f.MulLatency != 5 || f.DivLatency != 19 {
		t.Errorf("§5.11 FPU defaults wrong: %+v", f)
	}
	m := DefaultMMU()
	if m.TLBEntries != 64 || m.L2Bytes != 512<<10 {
		t.Errorf("MMU defaults wrong: %+v", m)
	}
}

func TestRunScheduledSmoke(t *testing.T) {
	w, err := GetWorkload("sc")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Baseline(), w, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunScheduled(Baseline(), w, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Instructions != base.Instructions {
		t.Errorf("scheduling changed instruction count: %d vs %d",
			sched.Instructions, base.Instructions)
	}
	if float64(sched.Cycles) > 1.05*float64(base.Cycles) {
		t.Errorf("scheduling slowed sc down: %d vs %d cycles", sched.Cycles, base.Cycles)
	}
}

func TestRunUnknownWorkloadPath(t *testing.T) {
	if _, err := GetWorkload("no-such-kernel"); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("error %v", err)
	}
}

func TestReportExtras(t *testing.T) {
	w, _ := GetWorkload("espresso")
	rep, err := Run(Baseline(), w, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	// §2.3 write validation: the micro-TLB should validate the vast
	// majority of stores for free (hot pages stay resident).
	if rep.WriteValidationRate() < 0.5 {
		t.Errorf("write validation rate %.2f too low", rep.WriteValidationRate())
	}
	if rep.DualIssueRate() <= 0 || rep.DualIssueRate() > 1 {
		t.Errorf("dual issue rate %f", rep.DualIssueRate())
	}
}
