// Quickstart: simulate one benchmark on the paper's baseline machine and
// print the headline metrics.
package main

import (
	"fmt"
	"log"

	"aurora"
)

func main() {
	w, err := aurora.GetWorkload("espresso")
	if err != nil {
		log.Fatal(err)
	}

	cfg := aurora.Baseline() // Table 1: 2K icache, 32K dcache, 4-line WC,
	// 6-entry ROB, 4 stream buffers, 2 MSHRs, dual issue, 17-cycle memory.

	rep, err := aurora.Run(cfg, w, 0) // 0 = run the kernel to completion
	if err != nil {
		log.Fatal(err)
	}

	cost, _ := aurora.Cost(cfg)
	fmt.Printf("%s on the %s model (%d RBE):\n", w.Name, cfg.Name, cost)
	fmt.Printf("  %d instructions in %d cycles → CPI %.3f\n",
		rep.Instructions, rep.Cycles, rep.CPI())
	fmt.Printf("  instruction cache hit %.2f%%, data cache hit %.2f%%\n",
		100*rep.ICacheHitRate(), 100*rep.DCacheHitRate())
	fmt.Printf("  stream buffers caught %.1f%% of I misses, %.1f%% of D misses\n",
		100*rep.IPrefetchHitRate(), 100*rep.DPrefetchHitRate())
	fmt.Printf("  write cache: %.1f%% hits, %.2f store transactions per store\n",
		100*rep.WriteCacheHitRate(), rep.WriteTrafficRatio())

	fmt.Println("\nwhere the cycles went (CPI contributions):")
	for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
		if v := rep.StallCPI(c); v > 0.001 {
			fmt.Printf("  %-9s %.3f\n", c, v)
		}
	}
}
