// Costsweep explores the integer-side design space the way §5.6 and
// Figure 8 do: it crosses instruction cache size, write cache depth,
// reorder buffer, MSHR count and issue width, runs each configuration on a
// benchmark, and reports the Pareto frontier of cost (RBE) versus CPI —
// ending with the paper's "point E" recommendation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"sync"

	"aurora"
)

type point struct {
	label string
	cfg   aurora.Config
	cost  int
	cpi   float64
}

func main() {
	ctx := context.Background()
	bench := flag.String("workload", "espresso", "benchmark to sweep")
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	w, err := aurora.GetWorkload(*bench)
	if err != nil {
		log.Fatal(err)
	}

	var pts []point
	for _, icache := range []int{1024, 2048, 4096} {
		for _, issue := range []int{1, 2} {
			for _, step := range []struct {
				wc, rob, mshr, pf int
			}{
				{2, 2, 1, 2},
				{4, 6, 2, 4},
				{4, 6, 4, 4},
				{8, 8, 4, 8},
			} {
				cfg := aurora.Baseline()
				cfg.ICacheBytes = icache
				cfg.IssueWidth = issue
				cfg.WriteCacheLines = step.wc
				cfg.ReorderBuffer = step.rob
				cfg.MSHRs = step.mshr
				cfg.PrefetchBuffers = step.pf
				cost, err := aurora.Cost(cfg)
				if err != nil {
					log.Fatal(err)
				}
				pts = append(pts, point{
					label: fmt.Sprintf("%dK/%dw wc%d rob%d mshr%d pf%d",
						icache/1024, issue, step.wc, step.rob, step.mshr, step.pf),
					cfg: cfg, cost: cost,
				})
			}
		}
	}

	// Simulate the whole space on the runner's worker pool; each point
	// writes its own slot, so the sorted report below is deterministic.
	r := aurora.NewRunner(*workers)
	errs := make([]error, len(pts))
	var wg sync.WaitGroup
	for i := range pts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := r.RunWorkload(ctx, pts[i].cfg, w, *budget)
			if err != nil {
				errs[i] = err
				return
			}
			pts[i].cpi = rep.CPI()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	sort.Slice(pts, func(i, j int) bool { return pts[i].cost < pts[j].cost })
	fmt.Printf("design space for %s (%d configurations):\n", w.Name, len(pts))
	fmt.Printf("%-28s %9s %8s %s\n", "config", "cost/RBE", "CPI", "")
	best := 1e18
	for _, p := range pts {
		mark := ""
		if p.cpi < best {
			best = p.cpi
			mark = "  <- Pareto frontier"
		}
		fmt.Printf("%-28s %9d %8.3f%s\n", p.label, p.cost, p.cpi, mark)
	}

	// The paper's recommendation (§5.6): baseline + 4K icache + 4 MSHRs.
	e := aurora.RecommendedE()
	ec, _ := aurora.Cost(e)
	repE, err := r.RunWorkload(ctx, e, w, *budget)
	if err != nil {
		log.Fatal(err)
	}
	l := aurora.Large()
	lc, _ := aurora.Cost(l)
	repL, err := r.RunWorkload(ctx, l, w, *budget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npoint E (recommended): %d RBE, CPI %.3f\n", ec, repE.CPI())
	fmt.Printf("large model:           %d RBE, CPI %.3f\n", lc, repL.CPI())
	fmt.Printf("→ E reaches %.1f%% of large-model performance at %.1f%% of its cost\n",
		100*repL.CPI()/repE.CPI(), 100*float64(ec)/float64(lc))
}
