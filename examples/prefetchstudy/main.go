// Prefetchstudy reproduces the paper's stream-buffer analysis: per-benchmark
// prefetch hit rates for the instruction and data streams (Tables 3 and 4)
// and the CPI effect of removing the buffers at both memory latencies
// (Figure 5).
package main

import (
	"flag"
	"fmt"
	"log"

	"aurora"
)

func main() {
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	flag.Parse()

	// Tables 3 & 4: hit rates per model.
	fmt.Println("prefetch hit rates (a hit = primary-cache miss caught by a stream buffer)")
	fmt.Printf("%-10s", "model")
	for _, w := range aurora.IntegerSuite() {
		fmt.Printf(" %13s", w.Name)
	}
	fmt.Println("\n" + "           (instruction-stream %% / data-stream %%)")
	for _, cfg := range []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()} {
		fmt.Printf("%-10s", cfg.Name)
		for _, w := range aurora.IntegerSuite() {
			rep, err := aurora.Run(cfg, w, *budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.1f / %5.1f", 100*rep.IPrefetchHitRate(), 100*rep.DPrefetchHitRate())
		}
		fmt.Println()
	}

	// Figure 5: removal ablation.
	fmt.Println("\nremoving the prefetch buffers (suite-average CPI):")
	fmt.Printf("%-10s %-8s %10s %10s %12s\n", "model", "latency", "with", "without", "improvement")
	for _, latency := range []int{17, 35} {
		for _, base := range []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()} {
			on := base.WithLatency(latency)
			off := on.WithoutPrefetch()
			avg := func(cfg aurora.Config) float64 {
				var sum float64
				for _, w := range aurora.IntegerSuite() {
					rep, err := aurora.Run(cfg, w, *budget)
					if err != nil {
						log.Fatal(err)
					}
					sum += rep.CPI()
				}
				return sum / float64(len(aurora.IntegerSuite()))
			}
			a, b := avg(on), avg(off)
			fmt.Printf("%-10s %-8d %10.3f %10.3f %11.1f%%\n",
				base.Name, latency, a, b, 100*(b-a)/b)
		}
	}
	fmt.Println("\npaper §5.2: ~11% improvement for the baseline at 17 cycles, ~19% at 35;")
	fmt.Println("the buffers cost only 20% of the baseline's instruction-cache area.")
}
