// Prefetchstudy reproduces the paper's stream-buffer analysis: per-benchmark
// prefetch hit rates for the instruction and data streams (Tables 3 and 4)
// and the CPI effect of removing the buffers at both memory latencies
// (Figure 5).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"aurora"
)

func main() {
	ctx := context.Background()
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	// One runner serves both studies: the Figure 5 rows at 17 cycles reuse
	// the Table 3/4 runs from the memo table instead of re-simulating.
	r := aurora.NewRunner(*workers)
	models := []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()}
	suite := aurora.IntegerSuite()

	avg := func(cfg aurora.Config) float64 {
		cpis := make([]float64, len(suite))
		errs := make([]error, len(suite))
		var wg sync.WaitGroup
		for i, w := range suite {
			wg.Add(1)
			go func(i int, w *aurora.Workload) {
				defer wg.Done()
				rep, err := r.RunWorkload(ctx, cfg, w, *budget)
				if err != nil {
					errs[i] = err
					return
				}
				cpis[i] = rep.CPI()
			}(i, w)
		}
		wg.Wait()
		var sum float64
		for i, c := range cpis {
			if errs[i] != nil {
				log.Fatal(errs[i])
			}
			sum += c
		}
		return sum / float64(len(suite))
	}

	// Tables 3 & 4: hit rates per model, all runs fanned out up front.
	reps := make([][]*aurora.Report, len(models))
	errs := make([][]error, len(models))
	var wg sync.WaitGroup
	for mi, cfg := range models {
		reps[mi] = make([]*aurora.Report, len(suite))
		errs[mi] = make([]error, len(suite))
		for wi, w := range suite {
			wg.Add(1)
			go func(mi, wi int, cfg aurora.Config, w *aurora.Workload) {
				defer wg.Done()
				reps[mi][wi], errs[mi][wi] = r.RunWorkload(ctx, cfg, w, *budget)
			}(mi, wi, cfg, w)
		}
	}
	wg.Wait()

	fmt.Println("prefetch hit rates (a hit = primary-cache miss caught by a stream buffer)")
	fmt.Printf("%-10s", "model")
	for _, w := range suite {
		fmt.Printf(" %13s", w.Name)
	}
	fmt.Println("\n" + "           (instruction-stream %% / data-stream %%)")
	for mi, cfg := range models {
		fmt.Printf("%-10s", cfg.Name)
		for wi := range suite {
			if errs[mi][wi] != nil {
				log.Fatal(errs[mi][wi])
			}
			rep := reps[mi][wi]
			fmt.Printf("  %5.1f / %5.1f", 100*rep.IPrefetchHitRate(), 100*rep.DPrefetchHitRate())
		}
		fmt.Println()
	}

	// Figure 5: removal ablation.
	fmt.Println("\nremoving the prefetch buffers (suite-average CPI):")
	fmt.Printf("%-10s %-8s %10s %10s %12s\n", "model", "latency", "with", "without", "improvement")
	for _, latency := range []int{17, 35} {
		for _, base := range models {
			on := base.WithLatency(latency)
			off := on.WithoutPrefetch()
			a, b := avg(on), avg(off)
			fmt.Printf("%-10s %-8d %10.3f %10.3f %11.1f%%\n",
				base.Name, latency, a, b, 100*(b-a)/b)
		}
	}
	st := r.Stats()
	fmt.Printf("\n(%d distinct simulations; %d served from the memo table)\n", st.Misses, st.Hits)
	fmt.Println("\npaper §5.2: ~11% improvement for the baseline at 17 cycles, ~19% at 35;")
	fmt.Println("the buffers cost only 20% of the baseline's instruction-cache area.")
}
