// Stallanalysis decomposes CPI into the paper's Figure 6 stall categories
// for every integer benchmark on every machine model, showing where each
// model's cycles go — the small model drowning in LSU-busy stalls, the
// large model left with the pipelined data cache's load latency.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"aurora"
)

func main() {
	ctx := context.Background()
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	models := []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()}
	suite := aurora.IntegerSuite()

	// Run every (model, benchmark) pair on the worker pool up front; the
	// report tables below read the results back in model/suite order.
	r := aurora.NewRunner(*workers)
	reps := make([][]*aurora.Report, len(models))
	errs := make([][]error, len(models))
	var wg sync.WaitGroup
	for mi, cfg := range models {
		reps[mi] = make([]*aurora.Report, len(suite))
		errs[mi] = make([]error, len(suite))
		for wi, w := range suite {
			wg.Add(1)
			go func(mi, wi int, cfg aurora.Config, w *aurora.Workload) {
				defer wg.Done()
				reps[mi][wi], errs[mi][wi] = r.RunWorkload(ctx, cfg, w, *budget)
			}(mi, wi, cfg, w)
		}
	}
	wg.Wait()

	for mi, cfg := range models {
		cost, _ := aurora.Cost(cfg)
		fmt.Printf("=== %s model (%d RBE) ===\n", cfg.Name, cost)
		fmt.Printf("%-10s %7s %7s", "bench", "CPI", "issue")
		for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
			fmt.Printf(" %9s", c)
		}
		fmt.Println()

		var totCPI float64
		var totStall [aurora.NumStallCauses]float64
		for wi, w := range suite {
			if errs[mi][wi] != nil {
				log.Fatal(errs[mi][wi])
			}
			rep := reps[mi][wi]
			fmt.Printf("%-10s %7.3f", w.Name, rep.CPI())
			base := rep.CPI()
			for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
				base -= rep.StallCPI(c)
			}
			fmt.Printf(" %7.3f", base)
			for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
				v := rep.StallCPI(c)
				totStall[c] += v
				fmt.Printf(" %9.3f", v)
			}
			totCPI += rep.CPI()
			fmt.Println()
		}
		n := float64(len(suite))
		fmt.Printf("%-10s %7.3f %7s", "average", totCPI/n, "")
		for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
			fmt.Printf(" %9.3f", totStall[c]/n)
		}
		fmt.Print("\n\n")
	}

	fmt.Println("paper §5.3: small is dominated by LSU-busy; base and large by")
	fmt.Println("instruction misses and the 3-cycle pipelined data cache (Load).")
}
