// Stallanalysis decomposes CPI into the paper's Figure 6 stall categories
// for every integer benchmark on every machine model, showing where each
// model's cycles go — the small model drowning in LSU-busy stalls, the
// large model left with the pipelined data cache's load latency.
package main

import (
	"flag"
	"fmt"
	"log"

	"aurora"
)

func main() {
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	flag.Parse()

	models := []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()}

	for _, cfg := range models {
		cost, _ := aurora.Cost(cfg)
		fmt.Printf("=== %s model (%d RBE) ===\n", cfg.Name, cost)
		fmt.Printf("%-10s %7s %7s", "bench", "CPI", "issue")
		for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
			fmt.Printf(" %9s", c)
		}
		fmt.Println()

		var totCPI float64
		var totStall [aurora.NumStallCauses]float64
		for _, w := range aurora.IntegerSuite() {
			rep, err := aurora.Run(cfg, w, *budget)
			if err != nil {
				log.Fatal(err)
			}
			var stallSum float64
			fmt.Printf("%-10s %7.3f", w.Name, rep.CPI())
			base := rep.CPI()
			for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
				base -= rep.StallCPI(c)
			}
			fmt.Printf(" %7.3f", base)
			for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
				v := rep.StallCPI(c)
				stallSum += v
				totStall[c] += v
				fmt.Printf(" %9.3f", v)
			}
			totCPI += rep.CPI()
			fmt.Println()
		}
		n := float64(len(aurora.IntegerSuite()))
		fmt.Printf("%-10s %7.3f %7s", "average", totCPI/n, "")
		for c := aurora.StallCause(0); c < aurora.NumStallCauses; c++ {
			fmt.Printf(" %9.3f", totStall[c]/n)
		}
		fmt.Print("\n\n")
	}

	fmt.Println("paper §5.3: small is dominated by LSU-busy; base and large by")
	fmt.Println("instruction misses and the 3-cycle pipelined data cache (Load).")
}
