// Fpudesign walks the §5.7-§5.11 floating-point design space: issue
// policies, queue depths and functional-unit latencies, each costed in RBE,
// and reproduces the reasoning that leads to the paper's recommended FPU.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"aurora"
)

func main() {
	ctx := context.Background()
	budget := flag.Uint64("instr", 400_000, "instruction budget per run")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	// One runner serves every sweep below: the FP suite for each candidate
	// FPU fans out onto the worker pool, and sweep points that coincide
	// (several sweeps revisit the default FPU) come from the memo table.
	r := aurora.NewRunner(*workers)
	fpAvg := func(f aurora.FPUConfig) float64 {
		cfg := aurora.Baseline()
		cfg.FPU = f
		suite := aurora.FPSuite()
		cpis := make([]float64, len(suite))
		errs := make([]error, len(suite))
		var wg sync.WaitGroup
		for i, w := range suite {
			wg.Add(1)
			go func(i int, w *aurora.Workload) {
				defer wg.Done()
				rep, err := r.RunWorkload(ctx, cfg, w, *budget)
				if err != nil {
					errs[i] = err
					return
				}
				cpis[i] = rep.CPI()
			}(i, w)
		}
		wg.Wait()
		var sum float64
		for i, c := range cpis {
			if errs[i] != nil {
				log.Fatal(errs[i])
			}
			sum += c
		}
		return sum / float64(len(suite))
	}

	// 1. Issue policy (Table 6).
	fmt.Println("issue policy (FP-suite average CPI):")
	for _, p := range []struct {
		name   string
		policy aurora.FPUPolicy
	}{
		{"in-order issue, in-order completion", aurora.FPUInOrder},
		{"in-order issue, OOO completion (single)", aurora.FPUOOOSingle},
		{"in-order issue, OOO completion (dual)", aurora.FPUOOODual},
	} {
		f := aurora.DefaultFPU()
		f.Policy = p.policy
		fmt.Printf("  %-42s %.3f\n", p.name, fpAvg(f))
	}

	// 2. Queue sizing (Figure 9 a-c).
	fmt.Println("\ninstruction queue size (single-issue policy):")
	for _, q := range []int{1, 2, 3, 4, 5} {
		f := aurora.DefaultFPU()
		f.Policy = aurora.FPUOOOSingle
		f.InstrQueue = q
		fmt.Printf("  %d entries: CPI %.3f (cost +%d RBE)\n", q, fpAvg(f), q*50)
	}
	fmt.Println("load queue size:")
	for _, q := range []int{1, 2, 4} {
		f := aurora.DefaultFPU()
		f.Policy = aurora.FPUOOOSingle
		f.LoadQueue = q
		fmt.Printf("  %d entries: CPI %.3f\n", q, fpAvg(f))
	}

	// 3. Unit latencies (Figure 9 d-f): CPI against area.
	fmt.Println("\nadd-unit latency (cost falls as latency grows):")
	for _, lat := range []int{1, 2, 3, 4, 5} {
		f := aurora.DefaultFPU()
		f.AddLatency = lat
		fmt.Printf("  %d cycles: CPI %.3f  FPU cost %d RBE\n", lat, fpAvg(f), aurora.FPUCost(f))
	}
	fmt.Println("divide-unit latency:")
	for _, lat := range []int{10, 19, 30} {
		f := aurora.DefaultFPU()
		f.DivLatency = lat
		fmt.Printf("  %d cycles: CPI %.3f  FPU cost %d RBE\n", lat, fpAvg(f), aurora.FPUCost(f))
	}

	// 4. Pipelining ablation (§5.10).
	pip := aurora.DefaultFPU()
	unp := pip
	unp.AddPipelined, unp.CvtPipelined = false, false
	fmt.Printf("\nunpipelining add+convert: CPI %.3f → %.3f, cost %d → %d RBE\n",
		fpAvg(pip), fpAvg(unp), aurora.FPUCost(pip), aurora.FPUCost(unp))

	// 5. The recommendation.
	rec := aurora.DefaultFPU()
	fmt.Printf("\n§5.11 recommended FPU: dual issue, IQ %d, LQ %d, ROB %d, "+
		"add %d / mul %d / div %d cycles — CPI %.3f at %d RBE\n",
		rec.InstrQueue, rec.LoadQueue, rec.ReorderBuffer,
		rec.AddLatency, rec.MulLatency, rec.DivLatency,
		fpAvg(rec), aurora.FPUCost(rec))

	st := r.Stats()
	fmt.Printf("\n(%d distinct simulations; %d repeated sweep points served from the memo table)\n",
		st.Misses, st.Hits)
}
