// Schedulestudy runs the experiment the paper's conclusion leaves open:
// "In the large machines, most stalls were caused by the three-cycle latency
// of the pipelined data cache. Better compiler scheduling could possibly
// remove some of this penalty." (§6)
//
// It compares every machine model on unscheduled versus list-scheduled code
// (loads hoisted away from their consumers within each basic block) and
// breaks out the Load-stall component the sentence refers to.
package main

import (
	"flag"
	"fmt"
	"log"

	"aurora"
)

func main() {
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	flag.Parse()

	fmt.Println("§6: does compiler scheduling remove the pipelined-cache penalty?")
	fmt.Printf("%-10s %-10s %9s %9s %12s\n", "model", "bench", "baseCPI", "schedCPI", "Δload-stall")

	for _, cfg := range []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()} {
		var baseSum, schedSum float64
		for _, w := range aurora.IntegerSuite() {
			base, err := aurora.Run(cfg, w, *budget)
			if err != nil {
				log.Fatal(err)
			}
			sched, err := aurora.RunScheduled(cfg, w, *budget)
			if err != nil {
				log.Fatal(err)
			}
			baseSum += base.CPI()
			schedSum += sched.CPI()
			fmt.Printf("%-10s %-10s %9.3f %9.3f %11.3f\n",
				cfg.Name, w.Name, base.CPI(), sched.CPI(),
				sched.StallCPI(aurora.StallLoad)-base.StallCPI(aurora.StallLoad))
		}
		n := float64(len(aurora.IntegerSuite()))
		fmt.Printf("%-10s %-10s %9.3f %9.3f  (%.1f%% faster)\n\n",
			cfg.Name, "average", baseSum/n, schedSum/n,
			100*(baseSum-schedSum)/baseSum)
	}

	fmt.Println("The unschedulable remainder is load-use chains with no independent")
	fmt.Println("work in the block (pointer chasing) — scheduling removes \"some\",")
	fmt.Println("as the paper hedged, not most.")
}
