// Schedulestudy runs the experiment the paper's conclusion leaves open:
// "In the large machines, most stalls were caused by the three-cycle latency
// of the pipelined data cache. Better compiler scheduling could possibly
// remove some of this penalty." (§6)
//
// It compares every machine model on unscheduled versus list-scheduled code
// (loads hoisted away from their consumers within each basic block) and
// breaks out the Load-stall component the sentence refers to.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"

	"aurora"
)

type pair struct {
	base, sched *aurora.Report
	err         error
}

func main() {
	ctx := context.Background()
	budget := flag.Uint64("instr", 600_000, "instruction budget per run")
	workers := flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	flag.Parse()

	models := []aurora.Config{aurora.Small(), aurora.Baseline(), aurora.Large()}
	suite := aurora.IntegerSuite()

	// Both trace variants of every (model, benchmark) pair run on the
	// worker pool; the table below reads them back in order.
	r := aurora.NewRunner(*workers)
	pairs := make([][]pair, len(models))
	var wg sync.WaitGroup
	for mi, cfg := range models {
		pairs[mi] = make([]pair, len(suite))
		for wi, w := range suite {
			wg.Add(1)
			go func(p *pair, cfg aurora.Config, w *aurora.Workload) {
				defer wg.Done()
				if p.base, p.err = r.RunWorkload(ctx, cfg, w, *budget); p.err != nil {
					return
				}
				p.sched, p.err = r.RunScheduledWorkload(ctx, cfg, w, *budget)
			}(&pairs[mi][wi], cfg, w)
		}
	}
	wg.Wait()

	fmt.Println("§6: does compiler scheduling remove the pipelined-cache penalty?")
	fmt.Printf("%-10s %-10s %9s %9s %12s\n", "model", "bench", "baseCPI", "schedCPI", "Δload-stall")

	for mi, cfg := range models {
		var baseSum, schedSum float64
		for wi, w := range suite {
			p := pairs[mi][wi]
			if p.err != nil {
				log.Fatal(p.err)
			}
			baseSum += p.base.CPI()
			schedSum += p.sched.CPI()
			fmt.Printf("%-10s %-10s %9.3f %9.3f %11.3f\n",
				cfg.Name, w.Name, p.base.CPI(), p.sched.CPI(),
				p.sched.StallCPI(aurora.StallLoad)-p.base.StallCPI(aurora.StallLoad))
		}
		n := float64(len(suite))
		fmt.Printf("%-10s %-10s %9.3f %9.3f  (%.1f%% faster)\n\n",
			cfg.Name, "average", baseSum/n, schedSum/n,
			100*(baseSum-schedSum)/baseSum)
	}

	fmt.Println("The unschedulable remainder is load-use chains with no independent")
	fmt.Println("work in the block (pointer chasing) — scheduling removes \"some\",")
	fmt.Println("as the paper hedged, not most.")
}
