package aurora

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The headline regression net: the paper's top-line *shapes* — who wins, in
// which direction the knees fall — pinned both against the checked-in
// results_full.txt artifact and against a fresh quick simulation. Where
// TestGoldenReports pins every counter, this test pins the conclusions, so
// a regenerated artifact that silently flips a verdict fails review here.

// fig4Row is one model point of results_full.txt's Figure 4 block.
type fig4Row struct {
	model   string
	issue   int
	latency int
	cost    int
	avgCPI  float64
}

func parseFigure4(t *testing.T) []fig4Row {
	t.Helper()
	f, err := os.Open("results_full.txt")
	if err != nil {
		t.Fatalf("results_full.txt missing (regenerate with go run ./cmd/aurora-experiments): %v", err)
	}
	defer f.Close()
	var rows []fig4Row
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Figure 4:"):
			in = true
		case in && strings.HasPrefix(line, "----"):
			return rows
		case in:
			fields := strings.Fields(line)
			if len(fields) != 7 || fields[0] == "model" {
				continue
			}
			issue, err1 := strconv.Atoi(fields[1])
			lat, err2 := strconv.Atoi(fields[2])
			cost, err3 := strconv.Atoi(fields[3])
			avg, err4 := strconv.ParseFloat(fields[5], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				t.Fatalf("unparseable Figure 4 row: %q", line)
			}
			rows = append(rows, fig4Row{fields[0], issue, lat, cost, avg})
		}
	}
	t.Fatal("results_full.txt has no Figure 4 block")
	return nil
}

// TestGoldenHeadlines pins the paper's headline shapes against the published
// artifact: more resources help, dual issue wins, longer memory latency
// hurts, and costs order small < baseline < large.
func TestGoldenHeadlines(t *testing.T) {
	rows := parseFigure4(t)
	if len(rows) != 12 {
		t.Fatalf("Figure 4 should have 12 model points (3 models × 2 issue × 2 latencies), got %d", len(rows))
	}
	get := func(model string, issue, lat int) fig4Row {
		for _, r := range rows {
			if r.model == model && r.issue == issue && r.latency == lat {
				return r
			}
		}
		t.Fatalf("Figure 4 missing %s/issue=%d/latency=%d", model, issue, lat)
		return fig4Row{}
	}
	for _, issue := range []int{1, 2} {
		for _, lat := range []int{17, 35} {
			s, b, l := get("small", issue, lat), get("baseline", issue, lat), get("large", issue, lat)
			if !(l.avgCPI < b.avgCPI && b.avgCPI < s.avgCPI) {
				t.Errorf("issue=%d latency=%d: CPI must order large < baseline < small, got %.3f / %.3f / %.3f",
					issue, lat, l.avgCPI, b.avgCPI, s.avgCPI)
			}
			if !(s.cost < b.cost && b.cost < l.cost) {
				t.Errorf("issue=%d latency=%d: cost must order small < baseline < large, got %d / %d / %d",
					issue, lat, s.cost, b.cost, l.cost)
			}
		}
	}
	for _, model := range []string{"small", "baseline", "large"} {
		for _, lat := range []int{17, 35} {
			if single, dual := get(model, 1, lat), get(model, 2, lat); dual.avgCPI >= single.avgCPI {
				t.Errorf("%s latency=%d: dual issue must beat single (%.3f vs %.3f)",
					model, lat, dual.avgCPI, single.avgCPI)
			}
		}
		for _, issue := range []int{1, 2} {
			if fast, slow := get(model, issue, 17), get(model, issue, 35); slow.avgCPI < fast.avgCPI {
				t.Errorf("%s issue=%d: 35-cycle memory must not beat 17-cycle (%.3f vs %.3f)",
					model, issue, slow.avgCPI, fast.avgCPI)
			}
		}
	}
	// The paper's §5.6 sweet spot: dual-issue baseline reaches CPI ~1.
	if r := get("baseline", 2, 17); r.avgCPI >= 1.2 {
		t.Errorf("dual-issue baseline at 17 cycles should approach CPI 1, got %.3f", r.avgCPI)
	}
}

// TestExperimentVerdicts pins the shape of EXPERIMENTS.md's conclusions: the
// exact set of verdict lines, and that no claim has regressed to ✗. Update
// deliberately (with the experiment rerun that justifies it), never by
// accident.
func TestExperimentVerdicts(t *testing.T) {
	data, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	var full, partial, failed int
	for _, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.HasPrefix(line, "**✓/◐"):
			partial++
		case strings.HasPrefix(line, "**✓"):
			full++
		case strings.HasPrefix(line, "**◐"):
			partial++
		case strings.HasPrefix(line, "**✗"):
			failed++
		}
	}
	if failed != 0 {
		t.Errorf("EXPERIMENTS.md records %d failed (✗) verdicts; the reproduction previously had none", failed)
	}
	if full != 3 || partial != 3 {
		t.Errorf("EXPERIMENTS.md verdict census changed: %d reproduced, %d partial (want 3 and 3) — "+
			"if the experiments were deliberately rerun, update this pin", full, partial)
	}
}

// TestLiveHeadlineShapes re-derives the Figure 4 orderings from a fresh
// quick simulation, so the headline claims are checked against the current
// simulator too (including in -short runs, where the full golden matrix is
// skipped).
func TestLiveHeadlineShapes(t *testing.T) {
	const budget = 30_000
	w, err := GetWorkload("espresso")
	if err != nil {
		t.Fatal(err)
	}
	cpi := func(cfg Config) float64 {
		rep, err := Run(cfg, w, budget)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		return rep.CPI()
	}
	small, base, large := cpi(Small()), cpi(Baseline()), cpi(Large())
	if !(large <= base && base <= small) {
		t.Errorf("live CPI must order large <= baseline <= small, got %.3f / %.3f / %.3f", large, base, small)
	}
	single := Baseline()
	single.IssueWidth = 1
	if singleCPI := cpi(single); singleCPI <= base {
		t.Errorf("live: single-issue baseline (%.3f) must not beat dual issue (%.3f)", singleCPI, base)
	}
	slow := Baseline()
	slow.Memory.Latency = 35
	if slowCPI := cpi(slow); slowCPI < base {
		t.Errorf("live: 35-cycle memory (%.3f) must not beat 17-cycle (%.3f)", slowCPI, base)
	}
}
