package aurora

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"aurora/internal/asm"
	"aurora/internal/core"
	"aurora/internal/trace"
	"aurora/internal/vm"
)

// The differential net: random short programs are executed twice — once on
// the functional VM alone, once streamed through the cycle-accurate core —
// and the two runs must agree exactly on the retired-instruction stream and
// on the final architectural state. The timing model is allowed to cost
// instructions however it likes; it is never allowed to drop, duplicate,
// reorder or perturb them.

// genProgram emits a random but well-defined MIPS program: straight-line
// integer/FP arithmetic and memory traffic over a scratch buffer, stitched
// by forward-only conditional branches (so every program terminates), ending
// in the exit syscall.
func genProgram(rng *rand.Rand) string {
	regs := []string{"$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7", "$s1", "$s2", "$s3"}
	reg := func() string { return regs[rng.Intn(len(regs))] }

	var b strings.Builder
	b.WriteString("\t.data\nbuf:\t.space 256\n\t.text\nmain:\n")
	fmt.Fprintf(&b, "\tla $s0, buf\n")
	for i, r := range regs {
		fmt.Fprintf(&b, "\tli %s, %d\n", r, rng.Uint32()^uint32(i*0x9e3779b9))
	}

	nBlocks := 4 + rng.Intn(4)
	for blk := 0; blk < nBlocks; blk++ {
		fmt.Fprintf(&b, "blk%d:\n", blk)
		for n := 6 + rng.Intn(12); n > 0; n-- {
			switch rng.Intn(12) {
			case 0, 1:
				ops := []string{"addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"}
				fmt.Fprintf(&b, "\t%s %s, %s, %s\n", ops[rng.Intn(len(ops))], reg(), reg(), reg())
			case 2:
				ops := []string{"addiu", "slti", "sltiu"}
				fmt.Fprintf(&b, "\t%s %s, %s, %d\n", ops[rng.Intn(len(ops))], reg(), reg(), int16(rng.Uint32()))
			case 3:
				ops := []string{"andi", "ori", "xori"}
				fmt.Fprintf(&b, "\t%s %s, %s, %d\n", ops[rng.Intn(len(ops))], reg(), reg(), rng.Intn(1<<16))
			case 4:
				ops := []string{"sll", "srl", "sra"}
				fmt.Fprintf(&b, "\t%s %s, %s, %d\n", ops[rng.Intn(len(ops))], reg(), reg(), rng.Intn(32))
			case 5:
				fmt.Fprintf(&b, "\tlui %s, %d\n", reg(), rng.Intn(1<<16))
			case 6:
				fmt.Fprintf(&b, "\tmult %s, %s\n\tmflo %s\n\tmfhi %s\n", reg(), reg(), reg(), reg())
			case 7:
				// divu with the divisor forced non-zero.
				d := reg()
				fmt.Fprintf(&b, "\tori %s, %s, 1\n\tdivu %s, %s\n\tmflo %s\n", d, d, reg(), d, reg())
			case 8:
				off := 4 * rng.Intn(64)
				fmt.Fprintf(&b, "\tsw %s, %d($s0)\n\tlw %s, %d($s0)\n", reg(), off, reg(), off)
			case 9:
				off := rng.Intn(256)
				fmt.Fprintf(&b, "\tsb %s, %d($s0)\n\tlbu %s, %d($s0)\n", reg(), off, reg(), off)
			case 10:
				off := 2 * rng.Intn(128)
				fmt.Fprintf(&b, "\tsh %s, %d($s0)\n\tlh %s, %d($s0)\n", reg(), off, reg(), off)
			case 11:
				// FP through the decoupled unit: int → float, arithmetic,
				// store/reload through the scratch buffer.
				off := 4 * rng.Intn(32)
				fmt.Fprintf(&b, "\tmtc1 %s, $f2\n\tcvt.s.w $f4, $f2\n", reg())
				fmt.Fprintf(&b, "\tadd.s $f6, $f4, $f4\n\tswc1 $f6, %d($s0)\n\tlwc1 $f8, %d($s0)\n", off, off)
			}
		}
		// Forward-only control flow: branch to some later block (or fall
		// through), so termination is structural.
		if blk < nBlocks-1 && rng.Intn(2) == 0 {
			target := blk + 1 + rng.Intn(nBlocks-blk-1)
			br := []string{"beq", "bne"}[rng.Intn(2)]
			fmt.Fprintf(&b, "\t%s %s, %s, blk%d\n", br, reg(), reg(), target)
		}
	}
	fmt.Fprintf(&b, "blk%d:\n\tli $v0, 10\n\tsyscall\n", nBlocks)
	return b.String()
}

// teeStream records every trace record the core consumes.
type teeStream struct {
	m    *vm.Machine
	recs []trace.Record
	err  error
}

func (s *teeStream) Next() (trace.Record, bool) {
	if s.err != nil || s.m.Halted() {
		return trace.Record{}, false
	}
	rec, err := s.m.Step()
	if err != nil {
		if !vm.IsHalt(err) {
			s.err = err
		}
		return trace.Record{}, false
	}
	s.recs = append(s.recs, rec)
	return rec, true
}

func (s *teeStream) Err() error { return s.err }

// runFunctional executes a program on the bare VM, returning the machine and
// its full dynamic trace.
func runFunctional(t *testing.T, prog *asm.Program) (*vm.Machine, []trace.Record) {
	t.Helper()
	m, err := vm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for steps := 0; !m.Halted(); steps++ {
		if steps > 200_000 {
			t.Fatal("functional run did not terminate (generator emitted a loop?)")
		}
		rec, err := m.Step()
		if err != nil {
			if vm.IsHalt(err) {
				break
			}
			t.Fatalf("functional run faulted: %v", err)
		}
		recs = append(recs, rec)
	}
	return m, recs
}

// checkMachinesAgree compares the complete architectural state of two VMs.
func checkMachinesAgree(t *testing.T, ref, got *vm.Machine) {
	t.Helper()
	if ref.Reg != got.Reg {
		t.Errorf("integer register files diverge:\nref %v\ngot %v", ref.Reg, got.Reg)
	}
	if ref.FReg != got.FReg {
		t.Errorf("FP register files diverge:\nref %v\ngot %v", ref.FReg, got.FReg)
	}
	if ref.HI != got.HI || ref.LO != got.LO {
		t.Errorf("HI/LO diverge: ref %#x/%#x got %#x/%#x", ref.HI, ref.LO, got.HI, got.LO)
	}
	if ref.FCC != got.FCC {
		t.Errorf("FP condition codes diverge: ref %v got %v", ref.FCC, got.FCC)
	}
	if ref.Steps() != got.Steps() || ref.ExitCode() != got.ExitCode() {
		t.Errorf("run shape diverges: steps %d/%d exit %d/%d",
			ref.Steps(), got.Steps(), ref.ExitCode(), got.ExitCode())
	}
	for off := uint32(0); off < 256; off += 4 {
		a, b := ref.Mem.LoadWord(asm.DataBase+off), got.Mem.LoadWord(asm.DataBase+off)
		if a != b {
			t.Errorf("memory diverges at buf+%d: ref %#08x got %#08x", off, a, b)
		}
	}
}

// TestDifferentialVMvsCore runs a battery of random programs through the
// functional VM and through the full timing simulator, requiring identical
// retired-instruction streams and identical final architectural state on
// every machine model.
func TestDifferentialVMvsCore(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	configs := []Config{Baseline(), Small(), Large()}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		src := genProgram(rng)
		prog, err := asm.Assemble(fmt.Sprintf("diff-%d.s", seed), src)
		if err != nil {
			t.Fatalf("seed %d: generated program does not assemble: %v\n%s", seed, err, src)
		}
		ref, want := runFunctional(t, prog)
		cfg := configs[seed%len(configs)]

		m2, err := vm.New(prog)
		if err != nil {
			t.Fatal(err)
		}
		tee := &teeStream{m: m2}
		p, err := core.NewProcessor(cfg, tee)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Run(0)
		if err != nil {
			t.Fatalf("seed %d on %s: timing run failed: %v", seed, cfg.Name, err)
		}

		if rep.Instructions != uint64(len(want)) {
			t.Fatalf("seed %d on %s: core retired %d instructions, VM executed %d",
				seed, cfg.Name, rep.Instructions, len(want))
		}
		if len(tee.recs) != len(want) {
			t.Fatalf("seed %d on %s: core consumed %d records, VM produced %d",
				seed, cfg.Name, len(tee.recs), len(want))
		}
		for i := range want {
			a, b := want[i], tee.recs[i]
			if a.PC != b.PC || a.MemAddr != b.MemAddr || a.Taken != b.Taken || a.SI.In != b.SI.In {
				t.Fatalf("seed %d on %s: retired stream diverges at %d:\nVM   pc=%#x mem=%#x taken=%v %v\ncore pc=%#x mem=%#x taken=%v %v",
					seed, cfg.Name, i, a.PC, a.MemAddr, a.Taken, a.SI.In, b.PC, b.MemAddr, b.Taken, b.SI.In)
			}
		}
		if rep.Cycles == 0 || rep.Cycles < rep.Instructions/2 {
			t.Errorf("seed %d on %s: implausible cycle count %d for %d instructions",
				seed, cfg.Name, rep.Cycles, rep.Instructions)
		}
		checkMachinesAgree(t, ref, m2)
	}
}
