package aurora

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The golden regression net: every kernel's timing report, down to the last
// counter, is pinned against a checked-in fingerprint captured from the
// pre-optimisation simulator. A hot-path refactor that silently perturbs any
// modelled event — one extra stall, one lost write-cache hit — fails here.
//
// Regenerate (only when a *modelling* change is intended and reviewed):
//
//	go test -run TestGoldenReports -update-golden .

var updateGolden = flag.Bool("update-golden", false, "rewrite golden report fingerprints")

// goldenBudget keeps the full 3-model × 15-kernel matrix under a second.
const goldenBudget = 80_000

func goldenModels() []Config {
	return []Config{Small(), Baseline(), Large()}
}

// reportFingerprint renders every counter of a report exactly — no rounding
// that could mask a perturbation.
func reportFingerprint(rep *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s issue=%d latency=%d\n", rep.Config.Name, rep.Config.IssueWidth, rep.Config.Memory.Latency)
	fmt.Fprintf(&b, " instr=%d cycles=%d dual=%d\n", rep.Instructions, rep.Cycles, rep.DualIssues)
	fmt.Fprintf(&b, " stalls=%v\n", rep.Stalls)
	fmt.Fprintf(&b, " icache=%d/%d dcache=%d/%d\n", rep.ICacheMisses, rep.ICacheAccesses, rep.DCacheMisses, rep.DCacheAccesses)
	fmt.Fprintf(&b, " ipf=%d/%d dpf=%d/%d\n", rep.IPrefetchHits, rep.IPrefetchProbes, rep.DPrefetchHits, rep.DPrefetchProbes)
	fmt.Fprintf(&b, " wc=%d/%d stores=%d tx=%d pages=%d/%d\n",
		rep.WCHits, rep.WCAccesses, rep.WCStores, rep.WCTransactions, rep.WCPageMatches, rep.WCPageMissChecks)
	fmt.Fprintf(&b, " mshr=%.9f victim=%d/%d slots=%d\n",
		rep.MSHRUtilisation, rep.VictimHits, rep.VictimProbes, rep.DelaySlotCrossings)
	fmt.Fprintf(&b, " biu{r=%d w=%d busy=%d lat=%d peak=%d}\n",
		rep.BIU.Reads, rep.BIU.Writes, rep.BIU.BusBusy, rep.BIU.ReadLatency, rep.BIU.PeakInflight)
	fmt.Fprintf(&b, " fpu{disp=%d iss=%d dual=%d ret=%d rob=%d unit=%d bus=%d src=%d empty=%d loads=%d occ=%d}\n",
		rep.FPU.Dispatched, rep.FPU.Issued, rep.FPU.DualIssues, rep.FPU.Retired,
		rep.FPU.ROBFullStall, rep.FPU.UnitBusy, rep.FPU.BusConflict, rep.FPU.SrcNotReady,
		rep.FPU.QueueEmpty, rep.FPU.LoadsWritten, rep.FPU.OccupancySum)
	return b.String()
}

// goldenCorpus renders the full fingerprint corpus: all kernels on the three
// Table 1 models at a fixed budget.
func goldenCorpus(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	for _, cfg := range goldenModels() {
		for _, name := range WorkloadNames() {
			w, err := GetWorkload(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(cfg, w, goldenBudget)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, cfg.Name, err)
			}
			fmt.Fprintf(&b, "== %s/%s\n%s", cfg.Name, name, reportFingerprint(rep))
		}
	}
	return b.String()
}

// TestGoldenReports pins every counter of every kernel's report on the three
// Table 1 machine models. The optimised hot path must be report-for-report
// identical to the recorded pre-optimisation behaviour.
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden matrix skipped in -short mode (covered by TestGoldenHeadlines)")
	}
	path := filepath.Join("testdata", "golden_reports.txt")
	got := goldenCorpus(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("timing reports diverged from golden fingerprints:\n%s",
			firstDiff(string(want), got))
	}
}

// firstDiff locates the first diverging line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	ctx := "(start)"
	for i := 0; i < n; i++ {
		if strings.HasPrefix(wl[i], "== ") {
			ctx = wl[i]
		}
		if wl[i] != gl[i] {
			return fmt.Sprintf("first diff at line %d under %s:\n  golden: %s\n  got:    %s", i+1, ctx, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}
