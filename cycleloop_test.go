package aurora

import (
	"testing"

	"aurora/internal/core"
	"aurora/internal/trace"
)

// loopStream replays a fixed record sequence forever — an endless synthetic
// workload, so the steady-state cycle loop can be measured (or stepped by a
// benchmark) without ever draining.
type loopStream struct {
	recs []trace.Record
	i    int
}

func (s *loopStream) Next() (trace.Record, bool) {
	r := s.recs[s.i]
	s.i++
	if s.i == len(s.recs) {
		s.i = 0
	}
	return r, true
}

func (s *loopStream) Err() error { return nil }

// newWarmCycleLoop builds a processor over an endless synthetic trace and
// steps it past the cold phase (cache fills, pool and ring growth), leaving
// it in steady state.
func newWarmCycleLoop(tb testing.TB, cfg core.Config) *core.Processor {
	tb.Helper()
	script := make([]byte, 1024)
	for i := range script {
		script[i] = byte(i * 131)
	}
	p, err := core.NewProcessor(cfg, &loopStream{recs: genTrace(script)})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		if !p.Step() {
			tb.Fatal("endless trace drained")
		}
	}
	return p
}

// TestCycleLoopZeroAlloc pins the headline property: once warmed up, the
// per-cycle simulation step performs no heap allocation at all — with the
// default folding front end and with every branch predictor swapped in
// (Predict/Update/Recover are on the per-cycle path).
func TestCycleLoopZeroAlloc(t *testing.T) {
	for _, spec := range []string{"folding", "static", "bimodal", "gshare", "tage"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			bp, err := ParseBPred(spec)
			if err != nil {
				t.Fatal(err)
			}
			p := newWarmCycleLoop(t, Baseline().WithBPred(bp))
			avg := testing.AllocsPerRun(20, func() {
				for i := 0; i < 5_000; i++ {
					p.Step()
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state cycle loop allocates: %.2f allocs per 5k-cycle run, want 0", avg)
			}
		})
	}
}

// TestSimulationStepMatchesRun checks that driving a workload through the
// incremental Simulation API retires exactly as many instructions in
// exactly as many cycles as the batch Run path.
func TestSimulationStepMatchesRun(t *testing.T) {
	w, err := GetWorkload("espresso")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 40_000
	rep, err := Run(Baseline(), w, budget)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulation(Baseline(), w, budget)
	if err != nil {
		t.Fatal(err)
	}
	for sim.Step() {
	}
	if sim.Cycles() != rep.Cycles || sim.Instructions() != rep.Instructions {
		t.Fatalf("stepped run: %d cycles / %d instructions, batch run: %d / %d",
			sim.Cycles(), sim.Instructions(), rep.Cycles, rep.Instructions)
	}
}

// BenchmarkCycleLoop times the steady-state per-cycle step over a warmed-up
// machine; allocs/op must report 0.
func BenchmarkCycleLoop(b *testing.B) {
	p := newWarmCycleLoop(b, Baseline())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
