package aurora

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aurora/internal/isa"
	"aurora/internal/trace"
)

// Property tests over the timing model: for arbitrary (but well-formed)
// traces and configurations, global invariants must hold.

// genTrace builds a well-formed synthetic trace from a random byte script.
func genTrace(script []byte) []trace.Record {
	var recs []trace.Record
	pc := uint32(0x1000)
	for _, op := range script {
		var in isa.Instruction
		var addr uint32
		switch op % 8 {
		case 0, 1, 2:
			in = isa.Instruction{Op: isa.OpADDU, Rd: 8 + op%8, Rs: 9, Rt: 10}
		case 3:
			in = isa.Instruction{Op: isa.OpLW, Rt: 8 + op%4, Rs: 29}
			addr = 0x2000 + uint32(op)*64
		case 4:
			in = isa.Instruction{Op: isa.OpSW, Rt: 8, Rs: 29}
			addr = 0x8000 + uint32(op)*32
		case 5:
			in = isa.Instruction{Op: isa.OpMULT, Rs: 8, Rt: 9}
		case 6:
			in = isa.Instruction{Op: isa.OpXOR, Rd: 11, Rs: 8, Rt: 9}
		case 7:
			in = isa.Instruction{Op: isa.OpSLL} // nop
		}
		rec := trace.NewRecord(pc, in)
		rec.MemAddr = addr
		recs = append(recs, rec)
		pc += 4
		if pc > 0x1000+4*256 { // loop the PC region: bounded code footprint
			pc = 0x1000
		}
	}
	return recs
}

// genConfig derives a valid configuration from three random bytes.
func genConfig(a, b, c byte) Config {
	cfg := Baseline()
	cfg.ICacheBytes = 1024 << (a % 3)
	cfg.DCacheBytes = 16384 << (a / 3 % 3)
	cfg.MSHRs = 1 + int(b%4)
	cfg.ReorderBuffer = 2 + int(b/4%8)
	cfg.WriteCacheLines = 2 << (c % 3)
	cfg.PrefetchBuffers = int(c / 4 % 9) // 0..8; 0 disables prefetch
	cfg.IssueWidth = 1 + int(c%2)
	return cfg
}

// Property: the simulator always terminates, retires exactly the trace, and
// its statistics satisfy conservation laws.
func TestPropertySimulatorInvariants(t *testing.T) {
	f := func(script []byte, a, b, c byte) bool {
		if len(script) > 2000 {
			script = script[:2000]
		}
		recs := genTrace(script)
		cfg := genConfig(a, b, c)
		rep, err := RunTrace(cfg, &trace.SliceStream{Records: recs})
		if err != nil {
			t.Logf("config %+v: %v", cfg, err)
			return false
		}
		if rep.Instructions != uint64(len(recs)) {
			t.Logf("retired %d of %d", rep.Instructions, len(recs))
			return false
		}
		if len(recs) > 0 && rep.Cycles == 0 {
			return false
		}
		// Cycles ≥ instructions / issue width.
		if rep.Cycles*uint64(cfg.IssueWidth) < rep.Instructions {
			t.Logf("cycles %d below issue bound", rep.Cycles)
			return false
		}
		// Stall accounting never exceeds total cycles.
		var stalls uint64
		for cause := StallCause(0); cause < NumStallCauses; cause++ {
			stalls += rep.Stalls[cause]
		}
		if stalls > rep.Cycles {
			t.Logf("stalls %d exceed cycles %d", stalls, rep.Cycles)
			return false
		}
		// Miss counts bounded by accesses; prefetch hits bounded by probes.
		if rep.ICacheMisses > rep.ICacheAccesses || rep.DCacheMisses > rep.DCacheAccesses {
			return false
		}
		if rep.IPrefetchHits > rep.IPrefetchProbes || rep.DPrefetchHits > rep.DPrefetchProbes {
			return false
		}
		// Write-cache conservation: transactions ≤ stores, hits ≤ accesses.
		if rep.WCTransactions > rep.WCStores || rep.WCHits > rep.WCAccesses {
			return false
		}
		// Disabled prefetch must report no prefetch activity.
		if cfg.PrefetchBuffers == 0 && (rep.IPrefetchHits != 0 || rep.DPrefetchHits != 0) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the simulator is deterministic — the same trace and config give
// identical reports.
func TestPropertyDeterminism(t *testing.T) {
	f := func(script []byte, a, b, c byte) bool {
		if len(script) > 800 {
			script = script[:800]
		}
		recs := genTrace(script)
		cfg := genConfig(a, b, c)
		r1, err1 := RunTrace(cfg, &trace.SliceStream{Records: recs})
		r2, err2 := RunTrace(cfg, &trace.SliceStream{Records: recs})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Cycles == r2.Cycles && r1.Instructions == r2.Instructions &&
			r1.Stalls == r2.Stalls && r1.DualIssues == r2.DualIssues
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: adding resources never makes the machine slower on the same
// trace — monotonicity of MSHRs (the strongest monotone knob in the model).
func TestPropertyMSHRMonotone(t *testing.T) {
	f := func(script []byte, seed byte) bool {
		if len(script) > 1200 {
			script = script[:1200]
		}
		recs := genTrace(script)
		cycles := func(mshrs int) uint64 {
			cfg := Baseline()
			cfg.DCacheBytes = 16 << 10
			cfg.MSHRs = mshrs
			cfg.PrefetchBuffers = int(seed % 5)
			rep, err := RunTrace(cfg, &trace.SliceStream{Records: recs})
			if err != nil {
				t.Fatal(err)
			}
			return rep.Cycles
		}
		// Allow a tiny tolerance: more overlap can shift prefetch
		// timing slightly, but a regression beyond 2% is a bug.
		c1, c4 := cycles(1), cycles(4)
		return float64(c4) <= float64(c1)*1.02
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: cost model is monotone in every resource.
func TestPropertyCostMonotone(t *testing.T) {
	f := func(a, b, c byte) bool {
		cfg := genConfig(a, b, c)
		base, err := Cost(cfg)
		if err != nil {
			return false
		}
		grow := cfg
		grow.MSHRs++
		grow.ReorderBuffer++
		grow.WriteCacheLines++
		grown, err := Cost(grow)
		if err != nil {
			return false
		}
		return grown > base
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the §6 rescheduling pass preserves the instruction multiset and
// every true dependence order, and never slows the machine down much (it
// can shift cache behaviour slightly, but a large regression is a bug).
func TestPropertyRescheduleSound(t *testing.T) {
	f := func(script []byte) bool {
		if len(script) > 1500 {
			script = script[:1500]
		}
		recs := genTrace(script)
		rs := trace.NewReschedule(&trace.SliceStream{Records: append([]trace.Record{}, recs...)})
		var out []trace.Record
		for {
			r, ok := rs.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		if len(out) != len(recs) {
			t.Logf("reschedule dropped records: %d → %d", len(recs), len(out))
			return false
		}
		// Multiset of opcodes preserved.
		count := func(rs []trace.Record) map[isa.Op]int {
			m := map[isa.Op]int{}
			for _, r := range rs {
				m[r.SI.In.Op]++
			}
			return m
		}
		in, outc := count(recs), count(out)
		for op, n := range in {
			if outc[op] != n {
				t.Logf("op %v count %d → %d", op, n, outc[op])
				return false
			}
		}
		// Every writer of a register still precedes its readers within
		// the reordered stream (per original producer/consumer pair,
		// checked pairwise over a window).
		lastWrite := map[uint8]int{}
		for i, r := range out {
			for _, s := range []uint8{r.SI.Deps.SrcInt[0], r.SI.Deps.SrcInt[1]} {
				if s == 0 {
					continue
				}
				if w, ok := lastWrite[s]; ok && w > i {
					return false
				}
			}
			if d := r.SI.Deps.DstInt; d != 0 {
				lastWrite[d] = i
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: running any generated trace through the scheduler and the
// simulator still satisfies the basic conservation laws.
func TestPropertyScheduledSimulation(t *testing.T) {
	f := func(script []byte, a, b, c byte) bool {
		if len(script) > 800 {
			script = script[:800]
		}
		recs := genTrace(script)
		cfg := genConfig(a, b, c)
		rep, err := RunTrace(cfg, trace.NewReschedule(&trace.SliceStream{Records: recs}))
		if err != nil {
			return false
		}
		return rep.Instructions == uint64(len(recs))
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
