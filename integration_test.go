package aurora

import (
	"testing"
)

// Integration tests: assemble → execute → simulate the actual workloads and
// assert the paper's qualitative findings (DESIGN.md "shape" list). Budgets
// are moderated so the suite stays test-sized; `go test -bench .` runs the
// full experiments.

const itBudget = 500_000

func runIT(t *testing.T, cfg Config, name string) *Report {
	t.Helper()
	w, err := GetWorkload(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(cfg, w, itBudget)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func avgIntCPI(t *testing.T, cfg Config) float64 {
	t.Helper()
	var sum float64
	for _, w := range IntegerSuite() {
		rep, err := Run(cfg, w, itBudget)
		if err != nil {
			t.Fatal(err)
		}
		sum += rep.CPI()
	}
	return sum / float64(len(IntegerSuite()))
}

func TestReportInvariants(t *testing.T) {
	for _, name := range []string{"espresso", "su2cor"} {
		rep := runIT(t, Baseline(), name)
		if rep.Instructions == 0 || rep.Cycles < rep.Instructions/2 {
			t.Errorf("%s: instr=%d cycles=%d", name, rep.Instructions, rep.Cycles)
		}
		if rep.CPI() < 0.5 {
			t.Errorf("%s: CPI %.3f below the dual-issue bound", name, rep.CPI())
		}
		for _, v := range []float64{
			rep.ICacheHitRate(), rep.DCacheHitRate(),
			rep.IPrefetchHitRate(), rep.DPrefetchHitRate(),
			rep.WriteCacheHitRate(),
		} {
			if v < 0 || v > 1 {
				t.Errorf("%s: rate %f out of range", name, v)
			}
		}
		var stallSum float64
		for c := StallCause(0); c < NumStallCauses; c++ {
			stallSum += rep.StallCPI(c)
		}
		if stallSum > rep.CPI() {
			t.Errorf("%s: stall CPI %.3f exceeds total %.3f", name, stallSum, rep.CPI())
		}
	}
}

// Shape 1 & 2 (§5.1): models order small > baseline > large in CPI, and the
// single-issue baseline beats the dual-issue small model at similar cost.
func TestModelOrdering(t *testing.T) {
	small := avgIntCPI(t, Small())
	base := avgIntCPI(t, Baseline())
	large := avgIntCPI(t, Large())
	if !(small > base && base > large) {
		t.Errorf("model CPI ordering broken: %.3f %.3f %.3f", small, base, large)
	}
	base1 := avgIntCPI(t, Baseline().WithIssueWidth(1))
	smallCPI := avgIntCPI(t, Small()) // dual issue
	if base1 >= smallCPI {
		t.Errorf("single-issue baseline (%.3f) should beat dual-issue small (%.3f) — §5.1", base1, smallCPI)
	}
}

// Shape: dual issue helps at 17 cycles and helps less at 35 (§5.1: the
// advantage shrinks as memory latency grows).
func TestIssueWidthVsLatency(t *testing.T) {
	gain := func(latency int) float64 {
		single := avgIntCPI(t, Baseline().WithLatency(latency).WithIssueWidth(1))
		dual := avgIntCPI(t, Baseline().WithLatency(latency).WithIssueWidth(2))
		return (single - dual) / single
	}
	g17, g35 := gain(17), gain(35)
	if g17 <= 0 {
		t.Errorf("dual issue does not help at 17 cycles: %.3f", g17)
	}
	if g35 > g17 {
		t.Errorf("dual-issue gain grows with latency (%.3f @17 vs %.3f @35) — paper says it shrinks", g17, g35)
	}
}

// Shape 3 (Tables 3/4): instruction-stream prefetch hit rates far exceed
// data-stream rates on the integer suite.
func TestPrefetchIStreamBeatsDStream(t *testing.T) {
	var iSum, dSum float64
	n := 0
	for _, w := range IntegerSuite() {
		rep, err := Run(Baseline(), w, itBudget)
		if err != nil {
			t.Fatal(err)
		}
		iSum += rep.IPrefetchHitRate()
		dSum += rep.DPrefetchHitRate()
		n++
	}
	iAvg, dAvg := iSum/float64(n), dSum/float64(n)
	if iAvg < 0.35 {
		t.Errorf("I-prefetch average %.2f too low (paper ≈0.58)", iAvg)
	}
	if iAvg < dAvg+0.15 {
		t.Errorf("I-prefetch (%.2f) should far exceed D-prefetch (%.2f)", iAvg, dAvg)
	}
}

// Shape: eqntott has the suite's most sequential I-stream (paper Table 3:
// 94.9%% on the small model, the highest).
func TestEqntottIPrefetchHighest(t *testing.T) {
	eq := runIT(t, Small(), "eqntott").IPrefetchHitRate()
	if eq < 0.7 {
		t.Errorf("eqntott I-prefetch %.2f, paper reports the suite's highest (94.9%%)", eq)
	}
}

// Shape 4 (Figure 5): prefetch helps the baseline model substantially
// (paper: 11%% at 17 cycles, 19%% at 35) and gains grow with memory latency.
// (The paper's additional finding that the small model gains *least* does
// not reproduce here: our kernels do not saturate the small model's blocking
// LSU hard enough to mask its prefetch savings — see EXPERIMENTS.md.)
func TestPrefetchRemovalEffect(t *testing.T) {
	improvement := func(cfg Config) float64 {
		with := avgIntCPI(t, cfg)
		without := avgIntCPI(t, cfg.WithoutPrefetch())
		return (without - with) / without
	}
	b17 := improvement(Baseline())
	b35 := improvement(Baseline().WithLatency(35))
	if b17 <= 0.02 {
		t.Errorf("prefetch gains only %.1f%% on baseline/17 (paper: ~11%%)", 100*b17)
	}
	if b35 <= b17 {
		t.Errorf("prefetch gain at 35 cycles (%.1f%%) not larger than at 17 (%.1f%%)", 100*b35, 100*b17)
	}
	l17 := improvement(Large())
	l35 := improvement(Large().WithLatency(35))
	if l35 <= l17 {
		t.Errorf("large-model prefetch gain at 35 (%.1f%%) not larger than at 17 (%.1f%%)", 100*l35, 100*l17)
	}
}

// Shape 5 (Figure 6): the small model is dominated by LSU-busy stalls;
// base and large are not.
func TestSmallModelLSUDominated(t *testing.T) {
	var smallLSU, smallIC, largeLSU float64
	for _, w := range IntegerSuite() {
		rs, err := Run(Small(), w, itBudget)
		if err != nil {
			t.Fatal(err)
		}
		smallLSU += rs.StallCPI(StallLSUBusy)
		smallIC += rs.StallCPI(StallICache)
		rl, err := Run(Large(), w, itBudget)
		if err != nil {
			t.Fatal(err)
		}
		largeLSU += rl.StallCPI(StallLSUBusy)
	}
	if smallLSU <= largeLSU {
		t.Errorf("small-model LSU stalls (%.3f) not above large (%.3f)", smallLSU, largeLSU)
	}
}

// Shape 6 (Figure 7): one MSHR (blocking cache) is dramatically worse;
// adding MSHRs helps every model.
func TestMSHRBenefit(t *testing.T) {
	withMSHRs := func(cfg Config, n int) float64 {
		cfg.MSHRs = n
		return avgIntCPI(t, cfg)
	}
	s1 := withMSHRs(Small(), 1)
	s2 := withMSHRs(Small(), 2)
	s4 := withMSHRs(Small(), 4)
	if !(s1 > s2 && s2 >= s4) {
		t.Errorf("small model MSHR sweep not monotone: %.3f %.3f %.3f", s1, s2, s4)
	}
	if (s1-s4)/s1 < 0.05 {
		t.Errorf("small model gains only %.1f%% from 4 MSHRs (paper: dramatic)", 100*(s1-s4)/s1)
	}
}

// Shape 7 (Table 5 / §5.5): write-cache hit rate grows with size; write
// traffic falls to a fraction of the store count.
func TestWriteCacheScaling(t *testing.T) {
	rate := func(cfg Config) (hit, traffic float64) {
		var h, a, tr, st uint64
		for _, w := range IntegerSuite() {
			rep, err := Run(cfg, w, itBudget)
			if err != nil {
				t.Fatal(err)
			}
			h += rep.WCHits
			a += rep.WCAccesses
			tr += rep.WCTransactions
			st += rep.WCStores
		}
		return float64(h) / float64(a), float64(tr) / float64(st)
	}
	sHit, sTr := rate(Small())
	bHit, bTr := rate(Baseline())
	lHit, lTr := rate(Large())
	if !(sHit < bHit && bHit <= lHit+0.02) {
		t.Errorf("write-cache hit rates not increasing: %.3f %.3f %.3f", sHit, bHit, lHit)
	}
	if !(sTr > bTr && bTr >= lTr) {
		t.Errorf("write traffic not decreasing: %.3f %.3f %.3f", sTr, bTr, lTr)
	}
	if sTr > 0.75 || lTr > 0.45 {
		t.Errorf("traffic ratios too high: small %.2f large %.2f (paper: 0.44 / 0.22)", sTr, lTr)
	}
}

// Shape 8 (§5.6 / Figure 8): point E ≈ large-model performance at lower cost.
func TestPointENearLarge(t *testing.T) {
	e := avgIntCPI(t, RecommendedE())
	l := avgIntCPI(t, Large())
	if e > l*1.08 {
		t.Errorf("point E CPI %.3f not within 8%% of large %.3f", e, l)
	}
	ec, _ := Cost(RecommendedE())
	lc, _ := Cost(Large())
	if ec >= lc {
		t.Errorf("point E cost %d not below large %d", ec, lc)
	}
}

// Shape 9 (Table 6): FPU policies order in-order > OOO-single > OOO-dual.
func TestFPUPolicyOrdering(t *testing.T) {
	avg := func(p FPUPolicy) float64 {
		var sum float64
		cfg := Baseline()
		f := DefaultFPU()
		f.Policy = p
		cfg.FPU = f
		for _, w := range FPSuite() {
			rep, err := Run(cfg, w, itBudget)
			if err != nil {
				t.Fatal(err)
			}
			sum += rep.CPI()
		}
		return sum / float64(len(FPSuite()))
	}
	ino := avg(FPUInOrder)
	sgl := avg(FPUOOOSingle)
	dua := avg(FPUOOODual)
	if !(ino > sgl && sgl > dua) {
		t.Errorf("policy ordering broken: %.3f %.3f %.3f", ino, sgl, dua)
	}
	if (ino-sgl)/ino < 0.03 {
		t.Errorf("OOO completion gains only %.1f%% (paper: 12%%)", 100*(ino-sgl)/ino)
	}
}

// Shape (§5 text): baseline primary-cache hit rates land near the paper's
// 96.5% instruction / 95.4% data figures.
func TestBaselineHitRates(t *testing.T) {
	var iAcc, iMiss, dAcc, dMiss uint64
	for _, w := range IntegerSuite() {
		rep, err := Run(Baseline(), w, 0) // natural completion
		if err != nil {
			t.Fatal(err)
		}
		iAcc += rep.ICacheAccesses
		iMiss += rep.ICacheMisses
		dAcc += rep.DCacheAccesses
		dMiss += rep.DCacheMisses
	}
	iHit := 1 - float64(iMiss)/float64(iAcc)
	dHit := 1 - float64(dMiss)/float64(dAcc)
	if iHit < 0.93 || iHit > 0.999 {
		t.Errorf("baseline icache hit %.4f outside [0.93, 0.999] (paper: 0.965)", iHit)
	}
	if dHit < 0.90 {
		t.Errorf("baseline dcache hit %.4f too low (paper: 0.954)", dHit)
	}
	t.Logf("baseline hit rates: icache %.2f%% (paper 96.5%%), dcache %.2f%% (paper 95.4%%)", 100*iHit, 100*dHit)
}

// The recommended FPU (§5.11) must not lose to the default on the FP suite.
func TestRecommendedFPUSane(t *testing.T) {
	cfg := Baseline()
	cfg.FPU = DefaultFPU()
	rep := runIT(t, cfg, "su2cor")
	if rep.CPI() > 4 {
		t.Errorf("recommended FPU CPI %.3f implausible", rep.CPI())
	}
	if c := FPUCost(DefaultFPU()); c < 10000 || c > 30000 {
		t.Errorf("FPU cost %d RBE implausible", c)
	}
}
