// Package aurora is a trace-driven timing simulator of the Aurora III, the
// experimental 300 MHz GaAs microprocessor of Upton, Huff, Mudge and Brown,
// "Resource Allocation in a High Clock Rate Microprocessor" (ASPLOS VI,
// 1994). It reproduces the paper's resource-allocation study: three machine
// models (small / baseline / large), single- and dual-issue pipelines,
// stream-buffer prefetching, a non-blocking external data cache with MSHRs,
// a coalescing write cache, and a decoupled floating-point unit with
// configurable queues and functional-unit latencies — all costed in
// Register Bit Equivalents.
//
// # Quick start
//
//	w, _ := aurora.GetWorkload("espresso")
//	rep, _ := aurora.Run(aurora.Baseline(), w, 0)
//	fmt.Printf("CPI %.3f, icache hit %.1f%%\n", rep.CPI(), 100*rep.ICacheHitRate())
//
// Workloads are MIPS R3000 assembly kernels modelled after the SPEC92
// programs the paper used; they are assembled and executed functionally by
// an internal MIPS VM whose dynamic instruction trace drives the timing
// model, mirroring the paper's trace-driven methodology.
package aurora

import (
	"context"
	"fmt"
	"runtime/debug"

	"aurora/internal/bpred"
	"aurora/internal/core"
	"aurora/internal/fpu"
	"aurora/internal/harness"
	"aurora/internal/isa"
	"aurora/internal/mem"
	"aurora/internal/mmu"
	"aurora/internal/obs"
	"aurora/internal/rbe"
	"aurora/internal/sample"
	"aurora/internal/simfault"
	"aurora/internal/trace"
	"aurora/internal/vm"
	"aurora/internal/workloads"
)

// SimFault is the typed error a panic inside the timing core is recovered
// into: it identifies the job (configuration fingerprint, workload), the
// faulting subsystem and the simulated cycle the panic fired at, and carries
// the stack. Match with errors.As:
//
//	var f *aurora.SimFault
//	if errors.As(err, &f) { log.Printf("bad design point: %v", f) }
type SimFault = simfault.Fault

// Config is a complete machine configuration (Table 1 resources plus the
// memory system and FPU).
type Config = core.Config

// Report carries the result of a timing run: CPI, stall breakdown, cache,
// prefetch, write-cache and FPU statistics.
type Report = core.Report

// StallCause labels the stall buckets of Figure 6.
type StallCause = core.StallCause

// Stall causes (paper §5.3, plus FPU decoupling and a residual bucket).
const (
	StallICache    = core.StallICache
	StallLoad      = core.StallLoad
	StallROBFull   = core.StallROBFull
	StallLSUBusy   = core.StallLSUBusy
	StallFPU       = core.StallFPU
	StallOther     = core.StallOther
	NumStallCauses = core.NumStallCauses
)

// FPUConfig parameterises the decoupled floating-point unit.
type FPUConfig = fpu.Config

// FPUPolicy selects the §5.8 issue policy.
type FPUPolicy = fpu.IssuePolicy

// FPU issue policies.
const (
	FPUInOrder   = fpu.InOrderComplete
	FPUOOOSingle = fpu.OutOfOrderSingle
	FPUOOODual   = fpu.OutOfOrderDual
)

// MemoryConfig parameterises the secondary memory system (BIU).
type MemoryConfig = mem.Config

// BPredConfig selects and sizes the branch direction predictor (extension;
// the zero value keeps the paper's branch-folding front end). See
// docs/BRANCH-PREDICTION.md.
type BPredConfig = bpred.Config

// BPredKind names a predictor model.
type BPredKind = bpred.Kind

// Predictor models, from the paper's folded front end to TAGE.
const (
	BPredFolding = bpred.Folding
	BPredStatic  = bpred.Static
	BPredBimodal = bpred.Bimodal
	BPredGShare  = bpred.GShare
	BPredTAGE    = bpred.TAGE
)

// ParseBPred parses a -bpred flag value such as "gshare:entries=4096,hist=12"
// into a predictor configuration.
func ParseBPred(s string) (BPredConfig, error) { return bpred.Parse(s) }

// MMUConfig parameterises the optional structured MMU model (TLB +
// secondary cache) behind the BIU; the zero value keeps the paper's flat
// average-latency abstraction.
type MMUConfig = mmu.Config

// DefaultMMU returns a period-plausible structured MMU (64-entry TLB,
// 512 KB secondary cache).
func DefaultMMU() MMUConfig { return mmu.DefaultConfig() }

// Workload is one benchmark kernel (a SPEC92 stand-in).
type Workload = workloads.Workload

// Machine-model constructors (Table 1).
var (
	Small        = core.Small
	Baseline     = core.Baseline
	Large        = core.Large
	RecommendedE = core.RecommendedE
	Models       = core.Models
)

// DefaultFPU returns the §5.11 recommended FPU configuration.
func DefaultFPU() FPUConfig { return fpu.DefaultConfig() }

// ModelByName resolves a Table 1 model name ("small", "baseline", "large")
// or the §5.6 recommendation ("pointE").
func ModelByName(name string) (Config, error) {
	switch name {
	case "small":
		return Small(), nil
	case "baseline", "base":
		return Baseline(), nil
	case "large":
		return Large(), nil
	case "pointE", "pointe", "e":
		return RecommendedE(), nil
	}
	return Config{}, fmt.Errorf("aurora: unknown model %q (small, baseline, large, pointE)", name)
}

// GetWorkload returns a workload by its SPEC name ("espresso", "alvinn", ...).
func GetWorkload(name string) (*Workload, error) { return workloads.Get(name) }

// WorkloadNames lists all workloads, integer suite first.
func WorkloadNames() []string { return workloads.Names() }

// IntegerSuite returns the six SPECint92 stand-ins in the paper's order.
func IntegerSuite() []*Workload { return workloads.Integer() }

// FPSuite returns the nine SPECfp92 stand-ins in the paper's order.
func FPSuite() []*Workload { return workloads.FP() }

// machineStream adapts a running functional VM to a trace stream, so the
// timing simulator replays execution without materialising the whole trace.
type machineStream struct {
	m      *vm.Machine
	budget uint64
	n      uint64
	err    error
}

func (s *machineStream) Next() (trace.Record, bool) {
	if s.err != nil || s.m.Halted() || (s.budget > 0 && s.n >= s.budget) {
		return trace.Record{}, false
	}
	rec, err := s.m.Step()
	if err != nil {
		// A fault or clean halt ends the stream; faults are reported.
		// (Step marks the machine halted on faults too, so the clean end
		// must be identified by the error, not by Halted().)
		if !vm.IsHalt(err) {
			s.err = err
		}
		return trace.Record{}, false
	}
	s.n++
	return rec, true
}

func (s *machineStream) Err() error { return s.err }

// NextBatch implements trace.BatchStream: it fills buf with up to len(buf)
// records in one call, keeping the VM's step loop on concrete types and
// amortising the stream interface dispatch across the batch.
func (s *machineStream) NextBatch(buf []trace.Record) int {
	n := 0
	for n < len(buf) {
		if s.err != nil || s.m.Halted() || (s.budget > 0 && s.n >= s.budget) {
			break
		}
		rec, err := s.m.Step()
		if err != nil {
			if !vm.IsHalt(err) {
				s.err = err
			}
			break
		}
		s.n++
		buf[n] = rec
		n++
	}
	return n
}

// cyclesOf reports how far a processor got, tolerating the nil processor of
// a construction-time panic.
func cyclesOf(p *core.Processor) uint64 {
	if p == nil {
		return 0
	}
	return p.Cycles()
}

// simJob builds the fault identity for a root-API run.
func simJob(cfg Config, w *Workload, scheduled bool) simfault.Job {
	return simfault.Job{
		Config:      cfg.Name,
		Fingerprint: cfg.Fingerprint(),
		Workload:    w.Name,
		Scheduled:   scheduled,
	}
}

// Run executes a workload on the given machine configuration. maxInstr
// bounds the dynamic instruction count (0 uses the workload's default
// budget, which covers the kernel's full natural run).
func Run(cfg Config, w *Workload, maxInstr uint64) (*Report, error) {
	return RunContext(context.Background(), cfg, w, maxInstr)
}

// RunContext is Run under a context: cancellation stops the simulation
// within a few thousand cycles and returns ctx.Err().
func RunContext(ctx context.Context, cfg Config, w *Workload, maxInstr uint64) (*Report, error) {
	return RunObservedContext(ctx, cfg, w, maxInstr, nil)
}

// RunObserved is Run with an observability sink attached (see internal/obs):
// the simulator streams timeline events and, at the sink's sampling
// interval, per-interval metric batches. A nil sink is exactly Run — the
// timing model stays on its zero-cost path, so the Report is identical.
func RunObserved(cfg Config, w *Workload, maxInstr uint64, sink obs.Sink) (*Report, error) {
	return RunObservedContext(context.Background(), cfg, w, maxInstr, sink)
}

// RunObservedContext is RunObserved under a context. It is also the root
// API's fault boundary: a panic inside machine construction or the timing
// core comes back as a *SimFault instead of unwinding the caller.
func RunObservedContext(ctx context.Context, cfg Config, w *Workload, maxInstr uint64, sink obs.Sink) (rep *Report, err error) {
	var p *core.Processor
	defer func() {
		if rec := recover(); rec != nil {
			rep, err = nil, simfault.FromPanic(rec, simJob(cfg, w, false), cyclesOf(p), debug.Stack())
		}
	}()
	m, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	if maxInstr == 0 {
		maxInstr = w.DefaultBudget * 4 // headroom: kernels halt on their own
	}
	stream := &machineStream{m: m, budget: maxInstr}
	p, err = core.NewProcessor(cfg, stream)
	if err != nil {
		return nil, err
	}
	if sink != nil {
		p.Attach(sink)
	}
	rep, err = p.RunContext(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("aurora: %s on %s: %w", w.Name, cfg.Name, err)
	}
	if serr := stream.Err(); serr != nil {
		return nil, fmt.Errorf("aurora: %s execution fault: %w", w.Name, serr)
	}
	return rep, nil
}

// Simulation is an incrementally-stepped timing run: the same machine Run
// drives, exposed one cycle at a time. Benchmarks use it to warm a
// processor up and then time the steady-state cycle loop in isolation.
type Simulation struct {
	p      *core.Processor
	stream *machineStream
	done   <-chan struct{} // nil without a cancellable context
	ctx    context.Context
	err    error
}

// simCancelMask matches the core cycle loop's cancellation-poll interval.
const simCancelMask = 1<<12 - 1

// NewSimulation prepares a workload run for cycle-by-cycle stepping.
// maxInstr bounds the dynamic instruction count (0 uses the workload's
// default budget).
func NewSimulation(cfg Config, w *Workload, maxInstr uint64) (*Simulation, error) {
	return NewSimulationContext(context.Background(), cfg, w, maxInstr)
}

// NewSimulationContext is NewSimulation under a context: once ctx is
// cancelled, Step returns false within a few thousand cycles and Err
// reports ctx.Err().
func NewSimulationContext(ctx context.Context, cfg Config, w *Workload, maxInstr uint64) (*Simulation, error) {
	m, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	if maxInstr == 0 {
		maxInstr = w.DefaultBudget * 4
	}
	stream := &machineStream{m: m, budget: maxInstr}
	p, err := core.NewProcessor(cfg, stream)
	if err != nil {
		return nil, err
	}
	return &Simulation{p: p, stream: stream, done: ctx.Done(), ctx: ctx}, nil
}

// Step advances the machine one cycle, reporting whether work remains.
func (s *Simulation) Step() bool {
	if s.done != nil && s.p.Cycles()&simCancelMask == 0 {
		select {
		case <-s.done:
			s.err = s.ctx.Err()
			return false
		default:
		}
	}
	return s.p.Step()
}

// Err reports why stepping stopped early: the context's error after a
// cancellation, nil for a natural end of the run.
func (s *Simulation) Err() error { return s.err }

// Cycles returns the cycles simulated so far.
func (s *Simulation) Cycles() uint64 { return s.p.Cycles() }

// Instructions returns the instructions retired so far.
func (s *Simulation) Instructions() uint64 { return s.p.Instructions() }

// FastForward advances the simulation n dynamic instructions at functional
// (VM) speed, warming only the machine's cache contents — no cycles pass,
// no statistics are counted. Detailed stepping picks up from the warmed
// state: this is the fast-forward mode, for skipping initialisation phases
// a study does not want to pay cycle-accurate time for. The skipped
// instructions count against the simulation's instruction budget.
// It returns the number of instructions actually skipped (the kernel may
// halt or exhaust the budget first).
func (s *Simulation) FastForward(n uint64) (uint64, error) {
	var skipped uint64
	for skipped < n {
		if s.stream.m.Halted() || (s.stream.budget > 0 && s.stream.n >= s.stream.budget) {
			break
		}
		rec, err := s.stream.m.Step()
		if err != nil {
			if vm.IsHalt(err) {
				break
			}
			return skipped, fmt.Errorf("aurora: fast-forward execution fault: %w", err)
		}
		s.stream.n++
		skipped++
		s.p.WarmAccess(core.WarmFetch, rec.PC)
		if rec.SI.Class.IsMem() {
			k := core.WarmLoad
			if rec.SI.Class == isa.ClassStore || rec.SI.Class == isa.ClassFPStore {
				k = core.WarmStore
			}
			s.p.WarmAccess(k, rec.MemAddr)
		}
		if skipped&simCancelMask == 0 && s.done != nil {
			select {
			case <-s.done:
				s.err = s.ctx.Err()
				return skipped, s.err
			default:
			}
		}
	}
	s.p.Reopen()
	return skipped, nil
}

// SampleParams configures the sampled simulation mode (see internal/sample);
// the zero value selects the tuned defaults.
type SampleParams = sample.Params

// SampledReport is a sampled run's estimate: CPI with a measured confidence
// bound, plus the window measurements behind it.
type SampledReport = sample.Report

// RunSampled executes a workload in sampled + fast-forward mode: the
// functional VM fast-forwards between periodic cycle-accurate windows and
// CPI is estimated from the windows with a reported confidence bound
// (Report.CPIError). On the pinned benchmark sweep this is 5-8× faster than
// Run with |CPI error| within the bound on every kernel — see
// docs/SIMULATION-MODES.md for the algorithm and the error model.
// maxInstr follows Run's convention (0 = the workload's default budget).
func RunSampled(cfg Config, w *Workload, maxInstr uint64, p SampleParams) (*SampledReport, error) {
	return RunSampledContext(context.Background(), cfg, w, maxInstr, p)
}

// RunSampledContext is RunSampled under a context, with the same fault
// boundary as RunObservedContext.
func RunSampledContext(ctx context.Context, cfg Config, w *Workload, maxInstr uint64, p SampleParams) (rep *SampledReport, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			rep, err = nil, simfault.FromPanic(rec, simJob(cfg, w, false), 0, debug.Stack())
		}
	}()
	if maxInstr == 0 {
		maxInstr = w.DefaultBudget * 4
	}
	rep, err = sample.Run(ctx, cfg, w, maxInstr, p)
	if err != nil {
		return nil, fmt.Errorf("aurora: %s on %s (sampled): %w", w.Name, cfg.Name, err)
	}
	return rep, nil
}

// RunScheduled is Run with the §6 "better compiler scheduling" pass: each
// basic block of the dynamic trace is list-scheduled (loads hoisted away
// from their consumers) before it reaches the timing model — modelling a
// recompiled binary.
func RunScheduled(cfg Config, w *Workload, maxInstr uint64) (*Report, error) {
	return RunScheduledContext(context.Background(), cfg, w, maxInstr)
}

// RunScheduledContext is RunScheduled under a context, with the same fault
// boundary as RunObservedContext.
func RunScheduledContext(ctx context.Context, cfg Config, w *Workload, maxInstr uint64) (rep *Report, err error) {
	var p *core.Processor
	defer func() {
		if rec := recover(); rec != nil {
			rep, err = nil, simfault.FromPanic(rec, simJob(cfg, w, true), cyclesOf(p), debug.Stack())
		}
	}()
	m, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	if maxInstr == 0 {
		maxInstr = w.DefaultBudget * 4
	}
	stream := &machineStream{m: m, budget: maxInstr}
	p, err = core.NewProcessor(cfg, trace.NewReschedule(stream))
	if err != nil {
		return nil, err
	}
	rep, err = p.RunContext(ctx, 0)
	if err != nil {
		return nil, fmt.Errorf("aurora: %s on %s (scheduled): %w", w.Name, cfg.Name, err)
	}
	return rep, nil
}

// RunTrace executes the timing model over an arbitrary trace stream
// (for pre-recorded traces or synthetic streams).
func RunTrace(cfg Config, stream trace.Stream) (*Report, error) {
	return RunTraceContext(context.Background(), cfg, stream)
}

// RunTraceContext is RunTrace under a context, with the panic fault boundary
// (the trace has no workload name; the fault identifies the configuration).
func RunTraceContext(ctx context.Context, cfg Config, stream trace.Stream) (rep *Report, err error) {
	var p *core.Processor
	defer func() {
		if rec := recover(); rec != nil {
			job := simfault.Job{Config: cfg.Name, Fingerprint: cfg.Fingerprint(), Workload: "trace"}
			rep, err = nil, simfault.FromPanic(rec, job, cyclesOf(p), debug.Stack())
		}
	}()
	p, err = core.NewProcessor(cfg, stream)
	if err != nil {
		return nil, err
	}
	return p.RunContext(ctx, 0)
}

// Runner is the parallel experiment engine: it schedules simulation jobs
// onto a bounded worker pool and memoizes results by the configuration's
// canonical fingerprint, so sweeps that revisit a (config, workload, budget)
// job reuse the finished Report instead of re-simulating. Reports returned
// for memo hits are shared and must be treated as read-only.
//
//	r := aurora.NewRunner(0) // 0 = GOMAXPROCS workers
//	rep, err := r.RunWorkload(aurora.Baseline(), w, 600_000)
type Runner = harness.Runner

// RunnerStats reports a Runner's memo-table behaviour.
type RunnerStats = harness.RunnerStats

// NewRunner returns a parallel experiment runner; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewRunner(workers int) *Runner { return harness.NewRunner(workers) }

// Cost returns a configuration's integer-side implementation cost in
// Register Bit Equivalents (Table 2).
func Cost(cfg Config) (int, error) { return cfg.CostRBE() }

// FPUCost returns an FPU configuration's cost in RBE (Table 2).
func FPUCost(cfg FPUConfig) int {
	c := cfg.Normalize()
	return rbe.FPUCost{
		InstrQueue: c.InstrQueue, LoadQueue: c.LoadQueue, StoreQueue: c.StoreQueue,
		ReorderBuf: c.ReorderBuffer,
		AddLatency: c.AddLatency, MulLatency: c.MulLatency,
		DivLatency: c.DivLatency, CvtLatency: c.CvtLatency,
		AddPipelined: c.AddPipelined, MulPipelined: c.MulPipelined,
	}.Total()
}
