module aurora

go 1.22
