package aurora

import (
	"testing"

	"aurora/internal/obs"
)

// End-to-end checks of the observability layer against the public API: the
// interval time series must reconcile exactly with the end-of-run Report,
// and attaching a sink must not perturb the simulation.

// reconcile pairs a metric column with the Report counter it must sum to.
func reconcile(t *testing.T, s *obs.IntervalSampler, name string, want uint64) {
	t.Helper()
	got, ok := s.Total(name)
	if !ok {
		t.Errorf("metric %q never emitted", name)
		return
	}
	if got != float64(want) {
		t.Errorf("sum of %q = %v, want report value %d", name, got, want)
	}
}

func TestMetricsReconcileWithReport(t *testing.T) {
	w, err := GetWorkload("espresso")
	if err != nil {
		t.Fatal(err)
	}
	// A non-divisor interval forces a final partial interval; the flush
	// re-emit must still land in the last row.
	s := obs.NewIntervalSampler(9_973)
	rep, err := RunObserved(Baseline(), w, 120_000, s)
	if err != nil {
		t.Fatal(err)
	}
	rows := s.Rows()
	if len(rows) == 0 {
		t.Fatal("sampler produced no rows")
	}
	if last := rows[len(rows)-1].Cycle; last != rep.Cycles {
		t.Errorf("last row cycle = %d, want end-of-run cycle %d", last, rep.Cycles)
	}

	reconcile(t, s, "instructions", rep.Instructions)
	reconcile(t, s, "dual_issues", rep.DualIssues)
	reconcile(t, s, "stall_icache", rep.Stalls[StallICache])
	reconcile(t, s, "stall_load", rep.Stalls[StallLoad])
	reconcile(t, s, "stall_rob_full", rep.Stalls[StallROBFull])
	reconcile(t, s, "stall_lsu_busy", rep.Stalls[StallLSUBusy])
	reconcile(t, s, "stall_fpu", rep.Stalls[StallFPU])
	reconcile(t, s, "stall_other", rep.Stalls[StallOther])
	reconcile(t, s, "icache_accesses", rep.ICacheAccesses)
	reconcile(t, s, "icache_misses", rep.ICacheMisses)
	reconcile(t, s, "dcache_accesses", rep.DCacheAccesses)
	reconcile(t, s, "dcache_misses", rep.DCacheMisses)
	reconcile(t, s, "iprefetch_probes", rep.IPrefetchProbes)
	reconcile(t, s, "iprefetch_hits", rep.IPrefetchHits)
	reconcile(t, s, "dprefetch_probes", rep.DPrefetchProbes)
	reconcile(t, s, "dprefetch_hits", rep.DPrefetchHits)
	reconcile(t, s, "wc_accesses", rep.WCAccesses)
	reconcile(t, s, "wc_hits", rep.WCHits)
	reconcile(t, s, "wc_stores", rep.WCStores)
	reconcile(t, s, "wc_transactions", rep.WCTransactions)
	reconcile(t, s, "wc_page_matches", rep.WCPageMatches)
	reconcile(t, s, "wc_page_miss_checks", rep.WCPageMissChecks)
	reconcile(t, s, "victim_probes", rep.VictimProbes)
	reconcile(t, s, "victim_hits", rep.VictimHits)
	reconcile(t, s, "biu_reads", rep.BIU.Reads)
	reconcile(t, s, "biu_writes", rep.BIU.Writes)
	reconcile(t, s, "fpu_dispatched", rep.FPU.Dispatched)
	reconcile(t, s, "fpu_issued", rep.FPU.Issued)
	reconcile(t, s, "fpu_retired", rep.FPU.Retired)
}

// An FP workload exercises the FPU columns that espresso leaves at zero.
func TestMetricsReconcileFPWorkload(t *testing.T) {
	w, err := GetWorkload("su2cor")
	if err != nil {
		t.Fatal(err)
	}
	s := obs.NewIntervalSampler(10_000)
	rep, err := RunObserved(Baseline(), w, 100_000, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FPU.Issued == 0 {
		t.Fatal("expected FP activity from su2cor")
	}
	reconcile(t, s, "fpu_dispatched", rep.FPU.Dispatched)
	reconcile(t, s, "fpu_issued", rep.FPU.Issued)
	reconcile(t, s, "fpu_retired", rep.FPU.Retired)
	reconcile(t, s, "stall_fpu", rep.Stalls[StallFPU])
}

// TestObservedRunMatchesPlainRun: the rendered report of an observed run
// must be byte-identical to an unobserved one — observability reads the
// model, never steers it.
func TestObservedRunMatchesPlainRun(t *testing.T) {
	w, err := GetWorkload("compress")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Baseline(), w, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.Multi(obs.NewIntervalSampler(7_000), obs.NewTraceSink(0, 25_000))
	got, err := RunObserved(Baseline(), w, 80_000, sink)
	if err != nil {
		t.Fatal(err)
	}
	if base.String() != got.String() {
		t.Errorf("observed report diverged:\nbase: %sgot:  %s", base, got)
	}
	if base.Cycles != got.Cycles || base.Instructions != got.Instructions {
		t.Errorf("cycle/instruction counts diverged: %d/%d vs %d/%d",
			base.Cycles, base.Instructions, got.Cycles, got.Instructions)
	}
}

// BenchmarkSimPlain / BenchmarkSimSampled bound the observability tax:
// compare ns/op to see the overhead of a 10k-cycle interval sampler (the
// nil-sink case must track BenchmarkSimPlain — that is the zero-cost claim
// at whole-simulation scale).
func BenchmarkSimPlain(b *testing.B) {
	w, err := GetWorkload("espresso")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunObserved(Baseline(), w, 100_000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSampled(b *testing.B) {
	w, err := GetWorkload("espresso")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunObserved(Baseline(), w, 100_000, obs.NewIntervalSampler(10_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRunObservedNilSinkEqualsRun(t *testing.T) {
	w, err := GetWorkload("li")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(Small(), w, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunObserved(Small(), w, 50_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("RunObserved(nil) != Run:\n%s\n%s", a, b)
	}
}
